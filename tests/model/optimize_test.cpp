#include "model/optimize.h"

#include <gtest/gtest.h>

#include <cmath>

namespace damkit::model {
namespace {

TEST(GoldenTest, FindsParabolaMinimum) {
  const double x =
      minimize_golden([](double v) { return (v - 3.7) * (v - 3.7); }, 0, 10);
  EXPECT_NEAR(x, 3.7, 1e-6);
}

TEST(GoldenTest, FindsBoundaryMinimum) {
  const double x = minimize_golden([](double v) { return v; }, 2, 9);
  EXPECT_NEAR(x, 2.0, 1e-5);
}

TEST(GoldenTest, HandlesAsymmetricUnimodal) {
  // min of x + 100/x at x = 10.
  const double x =
      minimize_golden([](double v) { return v + 100.0 / v; }, 0.1, 1000);
  EXPECT_NEAR(x, 10.0, 1e-4);
}

TEST(MinimizeOverTest, PicksBestCandidate) {
  const std::vector<uint64_t> cands{1, 2, 4, 8, 16, 32};
  const uint64_t best = minimize_over(
      [](uint64_t v) {
        const double d = static_cast<double>(v) - 7.0;
        return d * d;
      },
      cands);
  EXPECT_EQ(best, 8u);
}

TEST(MinimizeOverTest, FirstWinsTies) {
  const std::vector<uint64_t> cands{3, 5};
  EXPECT_EQ(minimize_over([](uint64_t) { return 1.0; }, cands), 3u);
}

TEST(GeometricLadderTest, CoversRange) {
  const auto ladder = geometric_ladder(4, 1024, 2.0);
  EXPECT_EQ(ladder.front(), 4u);
  EXPECT_EQ(ladder.back(), 1024u);
  for (size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i], ladder[i - 1]);
  }
  EXPECT_EQ(ladder.size(), 9u);  // 4, 8, ..., 1024
}

TEST(GeometricLadderTest, NonIntegerRatioDeduplicates) {
  const auto ladder = geometric_ladder(10, 20, 1.05);
  for (size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GT(ladder[i], ladder[i - 1]);
  }
  EXPECT_EQ(ladder.back(), 20u);
}

TEST(GeometricLadderDeathTest, RejectsBadRange) {
  EXPECT_DEATH(geometric_ladder(0, 10, 2.0), "");
  EXPECT_DEATH(geometric_ladder(10, 5, 2.0), "");
  EXPECT_DEATH(geometric_ladder(1, 10, 1.0), "");
}

}  // namespace
}  // namespace damkit::model
