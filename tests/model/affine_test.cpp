#include "model/affine.h"

#include <gtest/gtest.h>

namespace damkit::model {
namespace {

TEST(AffineTest, IoCostIsAffine) {
  AffineModel m(0.001);
  EXPECT_DOUBLE_EQ(m.io_cost(0), 1.0);
  EXPECT_DOUBLE_EQ(m.io_cost(1000), 2.0);
  EXPECT_DOUBLE_EQ(m.io_cost(2000), 3.0);
}

TEST(AffineTest, PhysicalConstruction) {
  // s = 12 ms, t = 6.67 ns/byte (≈150 MB/s).
  AffineModel m(0.012, 6.67e-9);
  EXPECT_NEAR(m.alpha(), 6.67e-9 / 0.012, 1e-15);
  EXPECT_DOUBLE_EQ(m.setup_seconds(), 0.012);
  EXPECT_NEAR(m.io_seconds(1 << 20), 0.012 + 6.67e-9 * (1 << 20), 1e-9);
}

TEST(AffineTest, HalfBandwidthPoint) {
  AffineModel m(0.001);
  EXPECT_DOUBLE_EQ(m.half_bandwidth_bytes(), 1000.0);
  // At the half-bandwidth point, setup equals transfer: cost exactly 2.
  EXPECT_DOUBLE_EQ(m.io_cost(m.half_bandwidth_bytes()), 2.0);
}

TEST(AffineTest, DamUpperBound) {
  AffineModel m(0.01);
  EXPECT_DOUBLE_EQ(m.dam_cost_upper_bound(5.0), 10.0);
}

TEST(AffineDeathTest, RejectsNonPositive) {
  EXPECT_DEATH(AffineModel(0.0), "");
  EXPECT_DEATH(AffineModel(-1.0), "");
  EXPECT_DEATH(AffineModel(0.0, 1e-9), "");
}

}  // namespace
}  // namespace damkit::model
