#include "model/tree_costs.h"

#include <gtest/gtest.h>

#include <cmath>

namespace damkit::model {
namespace {

TreeParams params(double alpha = 1e-4) {
  TreeParams p;
  p.alpha = alpha;
  p.n = 1e9;
  p.m = 1e6;
  return p;
}

TEST(TreeCostsTest, BtreeCostHasInteriorMinimum) {
  const TreeParams p = params();
  const double at_opt = btree_op_cost(p, optimal_btree_node_size(p.alpha));
  EXPECT_LT(at_opt, btree_op_cost(p, 16.0));
  EXPECT_LT(at_opt, btree_op_cost(p, 1.0 / p.alpha * 10));
}

// Corollary 7: the optimal B-tree node is Θ(1/(α ln(1/α))) — strictly
// below the half-bandwidth point 1/α.
TEST(TreeCostsTest, Corollary7OptBelowHalfBandwidth) {
  for (double alpha : {1e-3, 1e-4, 1e-5}) {
    const double opt = optimal_btree_node_size(alpha);
    const double half = half_bandwidth_node_size(alpha);
    EXPECT_LT(opt, half) << alpha;
    // Within a small constant of the closed form.
    const double closed = 1.0 / (alpha * std::log(1.0 / alpha));
    EXPECT_GT(opt, closed / 4.0) << alpha;
    EXPECT_LT(opt, closed * 4.0) << alpha;
  }
}

TEST(TreeCostsTest, OptimumSatisfiesFirstOrderCondition) {
  const double alpha = 1e-4;
  const double x = optimal_btree_node_size(alpha);
  // Numeric derivative of (1+αx)/ln(x+1) should vanish at x.
  auto f = [alpha](double v) { return (1 + alpha * v) / std::log(v + 1); };
  const double h = x * 1e-5;
  const double deriv = (f(x + h) - f(x - h)) / (2 * h);
  EXPECT_NEAR(deriv, 0.0, 1e-10);
}

// Table 3 row 1: B-tree cost grows ~linearly in B past the optimum.
TEST(TreeCostsTest, BtreeSensitivityNearlyLinear) {
  const TreeParams p = params();
  const double b0 = 4.0 / p.alpha;  // well past half-bandwidth
  const double r = btree_op_cost(p, 4 * b0) / btree_op_cost(p, b0);
  EXPECT_GT(r, 2.5);  // ~4x/log correction
  EXPECT_LT(r, 4.0);
}

// Corollary 10: the B^(1/2)-tree query cost grows ~sqrt(B) — much slower.
TEST(TreeCostsTest, BhalfTreeLessSensitiveThanBtree) {
  const TreeParams p = params();
  const double b0 = 4.0 / p.alpha;
  const double btree_ratio = btree_op_cost(p, 16 * b0) / btree_op_cost(p, b0);
  const double bhalf_ratio =
      bhalf_tree_query_cost(p, 16 * b0) / bhalf_tree_query_cost(p, b0);
  EXPECT_LT(bhalf_ratio, btree_ratio / 2.0);
}

TEST(TreeCostsTest, BetreeInsertBeatsBtreeInsert) {
  const TreeParams p = params();
  const double b = 1.0 / p.alpha;
  const double f = std::sqrt(b);
  EXPECT_LT(betree_insert_cost(p, b, f), btree_op_cost(p, b) / 5.0);
}

TEST(TreeCostsTest, OptimizedQueryBeatsNaive) {
  const TreeParams p = params();
  const double b = 4.0 / p.alpha;  // large node: αB = 4
  const double f = std::sqrt(b);
  EXPECT_LT(betree_query_cost_optimized(p, b, f),
            betree_query_cost_naive(p, b, f));
}

TEST(TreeCostsTest, RangeCostsScaleWithLength) {
  const TreeParams p = params();
  EXPECT_DOUBLE_EQ(btree_range_cost(p, 1000, 0), 0.0);
  const double one_leaf = btree_range_cost(p, 1000, 500);
  const double ten_leaves = btree_range_cost(p, 1000, 10000);
  EXPECT_NEAR(ten_leaves / one_leaf, 10.0, 1e-9);
  EXPECT_DOUBLE_EQ(betree_range_cost(p, 1000, 500), one_leaf);
}

TEST(TreeCostsTest, WriteAmps) {
  const TreeParams p = params();
  EXPECT_DOUBLE_EQ(btree_write_amp(4096), 4096.0);
  // Bε write amp F·log_F(N/M) is far below B for big nodes.
  EXPECT_LT(betree_write_amp(p, 1e6, 1000), btree_write_amp(1e6));
}

// Corollary 12: query parity with the optimal B-tree, inserts Θ(log 1/α)
// faster.
TEST(TreeCostsTest, Corollary12Speedup) {
  for (double alpha : {1e-3, 1e-4}) {
    TreeParams p = params(alpha);
    const OptimalBetreeChoice c = optimal_betree_choice(alpha);
    EXPECT_NEAR(c.node_size, c.fanout * c.fanout, 1e-6);

    const double b_btree = optimal_btree_node_size(alpha);
    const double q_btree = btree_op_cost(p, b_btree);
    const double q_betree = betree_query_cost_optimized(p, c.node_size,
                                                        c.fanout);
    // Query parity within a modest constant (1 + o(1) in theory).
    EXPECT_LT(q_betree, 2.5 * q_btree) << alpha;

    const double speedup = corollary12_insert_speedup(p);
    EXPECT_GT(speedup, std::log(1.0 / alpha) / 4.0) << alpha;
  }
}

TEST(TreeCostsTest, SpeedupGrowsAsAlphaShrinks) {
  EXPECT_GT(corollary12_insert_speedup(params(1e-5)),
            corollary12_insert_speedup(params(1e-3)));
}

TEST(TreeCostsDeathTest, GuardsInputs) {
  const TreeParams p = params();
  EXPECT_DEATH(btree_op_cost(p, 0.5), "");
  EXPECT_DEATH(betree_insert_cost(p, 100, 200), "");  // F > B
  EXPECT_DEATH(optimal_btree_node_size(0.0), "");
}

}  // namespace
}  // namespace damkit::model
