#include "lsm/memtable.h"

#include <gtest/gtest.h>

namespace damkit::lsm {
namespace {

TEST(MemTableTest, PutGetOverwrite) {
  MemTable m;
  EXPECT_TRUE(m.empty());
  m.put("k", "v1");
  m.put("k", "v2");
  const auto hit = m.get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, "v2");
  EXPECT_FALSE(hit->tombstone);
  EXPECT_EQ(m.entry_count(), 1u);
}

TEST(MemTableTest, EraseLeavesTombstone) {
  MemTable m;
  m.put("k", "v");
  m.erase("k");
  const auto hit = m.get("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->tombstone);
  // Tombstone for a never-written key is also recorded (it may shadow
  // older on-disk data).
  m.erase("ghost");
  ASSERT_TRUE(m.get("ghost").has_value());
  EXPECT_TRUE(m.get("ghost")->tombstone);
}

TEST(MemTableTest, UnknownKeyIsNullopt) {
  MemTable m;
  m.put("a", "1");
  EXPECT_FALSE(m.get("b").has_value());
}

TEST(MemTableTest, BytesTrackGrowthAndOverwrite) {
  MemTable m;
  EXPECT_EQ(m.approximate_bytes(), 0u);
  m.put("key1", std::string(100, 'x'));
  const uint64_t after_first = m.approximate_bytes();
  EXPECT_GT(after_first, 100u);
  // Overwriting with a smaller value shrinks the accounting.
  m.put("key1", "tiny");
  EXPECT_LT(m.approximate_bytes(), after_first);
  // Tombstoning keeps the key but drops the payload bytes.
  m.erase("key1");
  EXPECT_LT(m.approximate_bytes(), after_first);
}

TEST(MemTableTest, EntriesAreKeyOrdered) {
  MemTable m;
  m.put("c", "3");
  m.put("a", "1");
  m.put("b", "2");
  std::string prev;
  for (const auto& [k, slot] : m.entries()) {
    EXPECT_LT(prev, k);
    prev = k;
  }
  EXPECT_EQ(m.entries().size(), 3u);
}

TEST(MemTableTest, ClearResets) {
  MemTable m;
  m.put("a", "1");
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.approximate_bytes(), 0u);
  EXPECT_FALSE(m.get("a").has_value());
}

}  // namespace
}  // namespace damkit::lsm
