#include "lsm/sstable.h"

#include <gtest/gtest.h>

#include <memory>

#include "kv/slice.h"
#include "sim/hdd.h"
#include "util/bytes.h"

namespace damkit::lsm {
namespace {

class SSTableTest : public testing::Test {
 protected:
  SSTableTest()
      : dev_(make_config()), io_(dev_), arena_(dev_, 0) {}

  static sim::HddConfig make_config() {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 4ULL * kGiB;
    return cfg;
  }

  SSTableRef build(uint64_t count, uint64_t stride = 1,
                   uint64_t block_bytes = 1024) {
    SSTableBuilder b(dev_, io_, arena_, block_bytes, 10.0, 1);
    for (uint64_t i = 0; i < count; ++i) {
      b.add(Entry{kv::encode_key(i * stride), kv::make_value(i, 40), false});
    }
    return b.finish();
  }

  sim::HddDevice dev_;
  sim::IoContext io_;
  blockdev::ByteArena arena_;
};

TEST_F(SSTableTest, EmptyBuilderReturnsNull) {
  SSTableBuilder b(dev_, io_, arena_, 1024, 10.0, 1);
  EXPECT_EQ(b.finish(), nullptr);
}

TEST_F(SSTableTest, MetadataCorrect) {
  SSTableRef t = build(1000, 2);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->entry_count(), 1000u);
  EXPECT_EQ(t->min_key(), kv::encode_key(0));
  EXPECT_EQ(t->max_key(), kv::encode_key(1998));
  EXPECT_GT(t->block_count(), 10u);
  EXPECT_GT(t->total_bytes(), t->data_bytes());
  EXPECT_EQ(t->sequence(), 1u);
}

TEST_F(SSTableTest, GetFindsEveryKey) {
  SSTableRef t = build(500, 3);
  for (uint64_t i = 0; i < 500; i += 7) {
    const auto hit = t->get(kv::encode_key(i * 3), io_);
    ASSERT_TRUE(hit.has_value()) << i;
    EXPECT_EQ(hit->value, kv::make_value(i, 40));
    EXPECT_FALSE(hit->tombstone);
  }
}

TEST_F(SSTableTest, GetMissesBetweenAndOutside) {
  SSTableRef t = build(100, 10);
  EXPECT_FALSE(t->get(kv::encode_key(5), io_).has_value());    // between
  EXPECT_FALSE(t->get(kv::encode_key(995), io_).has_value());  // between
  EXPECT_FALSE(t->get(kv::encode_key(10'000), io_).has_value());  // above
}

TEST_F(SSTableTest, TombstonesSurfaceAsEntries) {
  SSTableBuilder b(dev_, io_, arena_, 1024, 10.0, 1);
  b.add(Entry{kv::encode_key(1), "v", false});
  b.add(Entry{kv::encode_key(2), "", true});
  SSTableRef t = b.finish();
  const auto hit = t->get(kv::encode_key(2), io_);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->tombstone);
}

TEST_F(SSTableTest, PointReadCostsOneBlock) {
  SSTableRef t = build(2000, 1, 4096);
  dev_.clear_stats();
  const auto hit = t->get(kv::encode_key(1234), io_);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(dev_.stats().reads, 1u);
  EXPECT_LE(dev_.stats().bytes_read, 2u * 4096);  // one (possibly full) block
}

TEST_F(SSTableTest, BloomSkipsAbsentKeysWithoutIo) {
  SSTableRef t = build(1000);
  dev_.clear_stats();
  int ios = 0;
  for (uint64_t i = 0; i < 500; ++i) {
    // Keys inside the range but absent... range is dense 0..999; use
    // the bloom API directly on far keys mapped into range via may_contain.
    if (!t->may_contain(kv::encode_key(100'000 + i))) continue;
    ++ios;
  }
  // ~1% false positive rate → almost everything skipped with no reads.
  EXPECT_LT(ios, 30);
  EXPECT_EQ(dev_.stats().reads, 0u);
}

TEST_F(SSTableTest, IteratorFullScanInOrder) {
  SSTableRef t = build(1500, 2);
  auto it = t->seek("", io_);
  uint64_t n = 0;
  std::string prev;
  while (it.valid()) {
    if (n > 0) EXPECT_LT(kv::compare(prev, it.entry().key), 0);
    prev = it.entry().key;
    it.next();
    ++n;
  }
  EXPECT_EQ(n, 1500u);
}

TEST_F(SSTableTest, IteratorSeeksMidTable) {
  SSTableRef t = build(1000, 2);  // keys 0,2,...,1998
  auto it = t->seek(kv::encode_key(501), io_);
  ASSERT_TRUE(it.valid());
  EXPECT_EQ(it.entry().key, kv::encode_key(502));
  auto it2 = t->seek(kv::encode_key(2000), io_);
  EXPECT_FALSE(it2.valid());
}

TEST_F(SSTableTest, OverlapsSemantics) {
  SSTableRef t = build(10, 10);  // keys 0..90
  EXPECT_TRUE(t->overlaps(kv::encode_key(0), kv::encode_key(0)));
  EXPECT_TRUE(t->overlaps(kv::encode_key(85), kv::encode_key(200)));
  EXPECT_FALSE(t->overlaps(kv::encode_key(91), kv::encode_key(200)));
}

TEST_F(SSTableTest, ReleaseReturnsArenaBytes) {
  SSTableRef t = build(1000);
  const uint64_t live_before = arena_.live_bytes();
  t->release();
  EXPECT_LT(arena_.live_bytes(), live_before);
}

TEST_F(SSTableTest, WriteIsSingleSequentialIo) {
  dev_.clear_stats();
  SSTableRef t = build(5000);
  EXPECT_EQ(dev_.stats().writes, 1u);
  EXPECT_GE(dev_.stats().bytes_written, t->data_bytes());
}

using SSTableDeathTest = SSTableTest;

TEST_F(SSTableDeathTest, OutOfOrderKeysAbort) {
  SSTableBuilder b(dev_, io_, arena_, 1024, 10.0, 1);
  b.add(Entry{kv::encode_key(10), "v", false});
  EXPECT_DEATH(b.add(Entry{kv::encode_key(5), "v", false}),
               "strictly ascending");
}

TEST_F(SSTableDeathTest, ReadAfterReleaseAborts) {
  SSTableRef t = build(100);
  t->release();
  EXPECT_DEATH((void)t->get(kv::encode_key(5), io_), "released");
}

}  // namespace
}  // namespace damkit::lsm
