#include "lsm/lsm_tree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "kv/slice.h"
#include "sim/hdd.h"
#include "util/bytes.h"

namespace damkit::lsm {
namespace {

class LsmTreeTest : public testing::Test {
 protected:
  LsmTreeTest() { reset(); }

  void reset(uint64_t memtable_bytes = 16 * 1024,
             uint64_t sstable_bytes = 32 * 1024,
             uint64_t level1_bytes = 128 * 1024) {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 8ULL * kGiB;
    dev_ = std::make_unique<sim::HddDevice>(cfg, 1);
    io_ = std::make_unique<sim::IoContext>(*dev_);
    LsmConfig lc;
    lc.memtable_bytes = memtable_bytes;
    lc.sstable_target_bytes = sstable_bytes;
    lc.block_bytes = 1024;
    lc.level0_limit = 4;
    lc.level1_bytes = level1_bytes;
    lc.size_ratio = 4.0;
    tree_ = std::make_unique<LsmTree>(*dev_, *io_, lc);
  }

  std::unique_ptr<sim::HddDevice> dev_;
  std::unique_ptr<sim::IoContext> io_;
  std::unique_ptr<LsmTree> tree_;
};

TEST_F(LsmTreeTest, EmptyTree) {
  EXPECT_EQ(tree_->get("k"), std::nullopt);
  EXPECT_TRUE(tree_->scan("", 5).empty());
}

TEST_F(LsmTreeTest, MemtableOnlyPutGet) {
  tree_->put("a", "1");
  tree_->put("b", "2");
  EXPECT_EQ(tree_->get("a"), "1");
  EXPECT_EQ(tree_->get("b"), "2");
  EXPECT_EQ(tree_->get("c"), std::nullopt);
  EXPECT_EQ(tree_->stats().memtable_flushes, 0u);
}

TEST_F(LsmTreeTest, FlushAndCompactAcrossLevels) {
  constexpr uint64_t kN = 20000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->put(kv::encode_key(i * 2654435761 % 100000),
               kv::make_value(i, 40));
  }
  tree_->flush();
  EXPECT_GT(tree_->stats().memtable_flushes, 5u);
  EXPECT_GT(tree_->stats().compactions, 0u);
  EXPECT_GE(tree_->level_count(), 2u);
  tree_->check_invariants();
}

TEST_F(LsmTreeTest, NewestVersionWinsAfterCompactions) {
  for (int round = 0; round < 6; ++round) {
    for (uint64_t i = 0; i < 500; ++i) {
      tree_->put(kv::encode_key(i),
                 "r" + std::to_string(round) + "-" + std::to_string(i));
    }
  }
  tree_->flush();
  tree_->check_invariants();
  for (uint64_t i = 0; i < 500; i += 17) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)),
              "r5-" + std::to_string(i))
        << i;
  }
}

TEST_F(LsmTreeTest, TombstonesDeleteAcrossLevels) {
  for (uint64_t i = 0; i < 2000; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 30));
  }
  tree_->flush();
  for (uint64_t i = 0; i < 2000; i += 2) tree_->erase(kv::encode_key(i));
  tree_->flush();
  tree_->check_invariants();
  for (uint64_t i = 0; i < 2000; i += 97) {
    if (i % 2 == 0) {
      EXPECT_EQ(tree_->get(kv::encode_key(i)), std::nullopt) << i;
    } else {
      EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 30)) << i;
    }
  }
}

TEST_F(LsmTreeTest, ScanMergesAllSources) {
  // Old data on disk, fresh overlay in the memtable.
  for (uint64_t i = 0; i < 3000; ++i) {
    tree_->put(kv::encode_key(i * 2), "old");
  }
  tree_->flush();
  tree_->put(kv::encode_key(11), "fresh-insert");
  tree_->put(kv::encode_key(14), "fresh-update");
  tree_->erase(kv::encode_key(12));
  const auto out = tree_->scan(kv::encode_key(10), 4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].first, kv::encode_key(10));
  EXPECT_EQ(out[0].second, "old");
  EXPECT_EQ(out[1].first, kv::encode_key(11));
  EXPECT_EQ(out[1].second, "fresh-insert");
  EXPECT_EQ(out[2].first, kv::encode_key(14));
  EXPECT_EQ(out[2].second, "fresh-update");
  EXPECT_EQ(out[3].first, kv::encode_key(16));
}

TEST_F(LsmTreeTest, ScanSpansTablesWithinLevel) {
  for (uint64_t i = 0; i < 8000; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 30));
  }
  tree_->flush();
  tree_->check_invariants();
  const auto out = tree_->scan(kv::encode_key(100), 3000);
  ASSERT_EQ(out.size(), 3000u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, kv::encode_key(100 + i));
  }
}

TEST_F(LsmTreeTest, BloomFiltersSuppressNegativeLookups) {
  for (uint64_t i = 0; i < 5000; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 30));
  }
  tree_->flush();
  dev_->clear_stats();
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(tree_->get(kv::encode_key(1'000'000 + i)), std::nullopt);
  }
  // In-range misses are rare here (keys dense), so most negative probes
  // are range-pruned or bloom-pruned: near-zero read IOs.
  EXPECT_LT(dev_->stats().reads, 25u);
}

TEST_F(LsmTreeTest, WriteAmplificationBounded) {
  constexpr uint64_t kN = 30000;
  dev_->clear_stats();
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->put(kv::encode_key(i * 2654435761 % (1 << 20)),
               kv::make_value(i, 40));
  }
  tree_->flush();
  const double logical = static_cast<double>(kN) * 56.0;
  const double amp =
      static_cast<double>(dev_->stats().bytes_written) / logical;
  // Leveled compaction write amp ~ size_ratio × depth; far below a
  // B-tree's node_size/entry_size.
  EXPECT_LT(amp, 40.0);
  EXPECT_GT(amp, 1.0);
}

TEST_F(LsmTreeTest, LevelSizesFollowGeometry) {
  for (uint64_t i = 0; i < 60000; ++i) {
    tree_->put(kv::encode_key(i * 2654435761 % (1 << 22)),
               kv::make_value(i, 40));
  }
  tree_->flush();
  tree_->check_invariants();
  // Every level within its capacity after compaction settles.
  for (size_t lvl = 1; lvl + 1 < tree_->level_count(); ++lvl) {
    if (tree_->level_table_counts()[lvl] == 0) continue;
    // Allow the last-filled level to exceed (it is the bottom).
    EXPECT_LE(tree_->level_bytes(lvl),
              static_cast<uint64_t>(128 * 1024 *
                                    std::pow(4.0, double(lvl - 1)) * 2))
        << lvl;
  }
}

TEST_F(LsmTreeTest, TieredCompactionCorrectAndCheaperToWrite) {
  auto run_style = [](CompactionStyle style, uint64_t* bytes_written) {
    sim::HddConfig dc;
    dc.capacity_bytes = 8ULL * kGiB;
    sim::HddDevice dev(dc, 1);
    sim::IoContext io(dev);
    LsmConfig lc;
    lc.memtable_bytes = 8 * 1024;
    lc.sstable_target_bytes = 16 * 1024;
    lc.block_bytes = 1024;
    lc.level0_limit = 4;
    lc.level1_bytes = 64 * 1024;
    lc.size_ratio = 4.0;
    lc.style = style;
    LsmTree tree(dev, io, lc);
    constexpr uint64_t kN = 20000;
    for (uint64_t i = 0; i < kN; ++i) {
      tree.put(kv::encode_key(i * 2654435761 % 50000),
               kv::make_value(i, 40));
    }
    tree.flush();
    tree.check_invariants();
    // Spot-check correctness: re-derive expected newest values.
    for (uint64_t probe = 0; probe < 50000; probe += 997) {
      uint64_t newest = kN;  // sentinel: not written
      for (uint64_t i = 0; i < kN; ++i) {
        if (i * 2654435761 % 50000 == probe) newest = i;
      }
      const auto got = tree.get(kv::encode_key(probe));
      if (newest == kN) {
        EXPECT_EQ(got, std::nullopt) << probe;
      } else {
        EXPECT_EQ(got, kv::make_value(newest, 40)) << probe;
      }
    }
    *bytes_written = dev.stats().bytes_written;
  };
  uint64_t leveled_bytes = 0, tiered_bytes = 0;
  run_style(CompactionStyle::kLeveled, &leveled_bytes);
  run_style(CompactionStyle::kTiered, &tiered_bytes);
  // The classic tradeoff: tiered rewrites each byte ~once per level hop,
  // leveled rewrites ~size_ratio times per hop.
  EXPECT_LT(tiered_bytes, leveled_bytes);
}

TEST_F(LsmTreeTest, TieredScanMergesOverlappingRuns) {
  sim::HddConfig dc;
  dc.capacity_bytes = 8ULL * kGiB;
  sim::HddDevice dev(dc, 1);
  sim::IoContext io(dev);
  LsmConfig lc;
  lc.memtable_bytes = 4 * 1024;
  lc.sstable_target_bytes = 8 * 1024;
  lc.block_bytes = 1024;
  lc.level0_limit = 3;
  lc.style = CompactionStyle::kTiered;
  LsmTree tree(dev, io, lc);
  for (uint64_t round = 0; round < 5; ++round) {
    for (uint64_t i = 0; i < 1000; ++i) {
      tree.put(kv::encode_key(i), "r" + std::to_string(round));
    }
  }
  tree.flush();
  tree.check_invariants();
  const auto out = tree.scan(kv::encode_key(10), 20);
  ASSERT_EQ(out.size(), 20u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, kv::encode_key(10 + i));
    EXPECT_EQ(out[i].second, "r4");  // newest round everywhere
  }
}

TEST_F(LsmTreeTest, StatsAccumulate) {
  tree_->put("a", "1");
  tree_->get("a");
  tree_->erase("a");
  tree_->scan("", 1);
  const LsmStats& s = tree_->stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 1u);
  EXPECT_EQ(s.erases, 1u);
  EXPECT_EQ(s.scans, 1u);
}

TEST_F(LsmTreeTest, HostMemoryReclaimedByCompaction) {
  // Obsolete tables must be trimmed, or the sparse store grows without
  // bound under churn.
  for (int round = 0; round < 10; ++round) {
    for (uint64_t i = 0; i < 2000; ++i) {
      tree_->put(kv::encode_key(i), kv::make_value(i + round, 40));
    }
    tree_->flush();
  }
  // Live data is ~2000 × 56 B; resident host bytes should be within a
  // small multiple, not 10 rounds' worth.
  EXPECT_LT(dev_->resident_host_bytes(), 4ULL * kMiB);
}

}  // namespace
}  // namespace damkit::lsm
