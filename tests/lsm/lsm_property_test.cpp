// Differential testing of the LSM-tree against std::map across a grid of
// memtable/SSTable/level geometries.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <optional>

#include "kv/slice.h"
#include "lsm/lsm_tree.h"
#include "sim/hdd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::lsm {
namespace {

struct PropertyParam {
  uint64_t memtable_bytes;
  uint64_t sstable_bytes;
  uint64_t level1_bytes;
  double size_ratio;
  uint64_t key_space;
  size_t value_bytes;
  CompactionStyle style;
  uint64_t seed;
};

class LsmPropertyTest : public testing::TestWithParam<PropertyParam> {};

TEST_P(LsmPropertyTest, AgreesWithStdMap) {
  const PropertyParam p = GetParam();
  sim::HddConfig cfg;
  cfg.capacity_bytes = 8ULL * kGiB;
  sim::HddDevice dev(cfg, p.seed);
  sim::IoContext io(dev);
  LsmConfig lc;
  lc.memtable_bytes = p.memtable_bytes;
  lc.sstable_target_bytes = p.sstable_bytes;
  lc.block_bytes = 1024;
  lc.level0_limit = 3;
  lc.level1_bytes = p.level1_bytes;
  lc.size_ratio = p.size_ratio;
  lc.style = p.style;
  LsmTree tree(dev, io, lc);

  std::map<std::string, std::string> ref;
  Rng rng(p.seed);
  constexpr int kOps = 6000;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t id = rng.uniform(p.key_space);
    const std::string key = kv::encode_key(id);
    const double dice = rng.uniform_double();
    if (dice < 0.5) {
      const std::string value = kv::make_value(rng.next(), p.value_bytes);
      tree.put(key, value);
      ref[key] = value;
    } else if (dice < 0.7) {
      const auto got = tree.get(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(got, std::nullopt) << "op " << i;
      } else {
        EXPECT_EQ(got, it->second) << "op " << i;
      }
    } else if (dice < 0.88) {
      tree.erase(key);
      ref.erase(key);
    } else {
      const size_t limit = 1 + static_cast<size_t>(rng.uniform(12));
      const auto got = tree.scan(key, limit);
      auto it = ref.lower_bound(key);
      size_t n = 0;
      for (; it != ref.end() && n < limit; ++it, ++n) {
        ASSERT_LT(n, got.size()) << "op " << i;
        EXPECT_EQ(got[n].first, it->first) << "op " << i;
        EXPECT_EQ(got[n].second, it->second) << "op " << i;
      }
      EXPECT_EQ(got.size(), n) << "op " << i;
    }
  }
  tree.check_invariants();
  tree.flush();
  tree.check_invariants();
  for (const auto& [k, v] : ref) EXPECT_EQ(tree.get(k), v);
  const auto all = tree.scan("", ref.size() + 50);
  ASSERT_EQ(all.size(), ref.size());
  auto it = ref.begin();
  for (size_t i = 0; i < all.size(); ++i, ++it) {
    EXPECT_EQ(all[i].first, it->first);
    EXPECT_EQ(all[i].second, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LsmPropertyTest,
    testing::Values(
        // Tiny memtables: constant flushing and L0 churn.
        PropertyParam{2048, 8192, 32 * 1024, 4.0, 400, 24,
                      CompactionStyle::kLeveled, 1},
        // Narrow key space: heavy shadowing and tombstone churn.
        PropertyParam{4096, 8192, 32 * 1024, 3.0, 50, 40,
                      CompactionStyle::kLeveled, 2},
        // Larger tables relative to levels: few, fat runs.
        PropertyParam{8192, 64 * 1024, 64 * 1024, 4.0, 1000, 60,
                      CompactionStyle::kLeveled, 3},
        // Aggressive ratio: shallow tree.
        PropertyParam{4096, 16 * 1024, 128 * 1024, 10.0, 800, 32,
                      CompactionStyle::kLeveled, 4},
        // Big values.
        PropertyParam{16 * 1024, 32 * 1024, 128 * 1024, 4.0, 200, 400,
                      CompactionStyle::kLeveled, 5},
        // Tiered compaction: overlapping runs at every level.
        PropertyParam{2048, 8192, 32 * 1024, 4.0, 400, 24,
                      CompactionStyle::kTiered, 6},
        PropertyParam{4096, 8192, 32 * 1024, 3.0, 50, 40,
                      CompactionStyle::kTiered, 7},
        PropertyParam{8192, 32 * 1024, 64 * 1024, 4.0, 1200, 48,
                      CompactionStyle::kTiered, 8}),
    [](const testing::TestParamInfo<PropertyParam>& info) {
      return "mem" + std::to_string(info.param.memtable_bytes) + "_sst" +
             std::to_string(info.param.sstable_bytes) + "_l1" +
             std::to_string(info.param.level1_bytes) + "_r" +
             std::to_string(static_cast<int>(info.param.size_ratio)) +
             "_keys" + std::to_string(info.param.key_space) + "_val" +
             std::to_string(info.param.value_bytes) +
             (info.param.style == CompactionStyle::kTiered ? "_tiered"
                                                           : "_leveled");
    });

}  // namespace
}  // namespace damkit::lsm
