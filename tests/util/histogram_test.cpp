#include "util/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace damkit {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.percentile(50), 0u);
}

TEST(HistogramTest, CountSumMinMaxMean) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(HistogramTest, PercentileApproximation) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.record(v * 1000);
  // Log-bucketed: ~3% relative resolution.
  const uint64_t p50 = h.percentile(50);
  EXPECT_GT(p50, 450'000u);
  EXPECT_LT(p50, 550'000u);
  const uint64_t p99 = h.percentile(99);
  EXPECT_GT(p99, 900'000u);
  EXPECT_LE(p99, 1'000'000u);
}

TEST(HistogramTest, SmallValuesExact) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.record(5);
  a.record(100);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 1105u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.record(42);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(HistogramTest, HugeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.record(~0ULL);
  h.record(1ULL << 62);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_GE(h.percentile(100), 1ULL << 62);
}

TEST(HistogramTest, ToStringRendersBars) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) h.record(rng.uniform(1 << 20));
  const std::string s = h.to_string(8);
  EXPECT_FALSE(s.empty());
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace damkit
