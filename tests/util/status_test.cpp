#include "util/status.h"

#include <gtest/gtest.h>

namespace damkit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(StatusTest, FactoryFunctionsCarryCodeAndMessage) {
  const Status s = Status::not_found("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "key 42");
  EXPECT_EQ(s.to_string(), "not_found: key 42");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_EQ(status_code_name(StatusCode::kOk), "ok");
  EXPECT_EQ(status_code_name(StatusCode::kInvalidArgument),
            "invalid_argument");
  EXPECT_EQ(status_code_name(StatusCode::kNotFound), "not_found");
  EXPECT_EQ(status_code_name(StatusCode::kOutOfRange), "out_of_range");
  EXPECT_EQ(status_code_name(StatusCode::kCorruption), "corruption");
  EXPECT_EQ(status_code_name(StatusCode::kResourceExhausted),
            "resource_exhausted");
  EXPECT_EQ(status_code_name(StatusCode::kFailedPrecondition),
            "failed_precondition");
  EXPECT_EQ(status_code_name(StatusCode::kInternal), "internal");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::not_found("a"), Status::not_found("b"));
  EXPECT_FALSE(Status::not_found("a") == Status::internal("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(*v, 7);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::invalid_argument("nope"));
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("payload"));
  ASSERT_TRUE(v.ok());
  const std::string moved = std::move(v).value();
  EXPECT_EQ(moved, "payload");
}

TEST(CheckTest, PassingCheckDoesNotAbort) {
  DAMKIT_CHECK(1 + 1 == 2);
  DAMKIT_CHECK_MSG(true, "never shown " << 42);
  DAMKIT_CHECK_OK(Status());
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(DAMKIT_CHECK(false), "DAMKIT_CHECK failed");
}

TEST(CheckDeathTest, FailingCheckMsgIncludesDetail) {
  EXPECT_DEATH(DAMKIT_CHECK_MSG(false, "detail " << 99), "detail 99");
}

TEST(CheckDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(DAMKIT_CHECK_OK(Status::corruption("bad block")), "bad block");
}

Status helper_returning_error() {
  DAMKIT_RETURN_IF_ERROR(Status::out_of_range("oops"));
  return Status();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(helper_returning_error().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace damkit
