#include "util/bytes.h"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace damkit {
namespace {

TEST(BytesTest, U16RoundTrip) {
  uint8_t buf[2];
  for (uint32_t v : {0u, 1u, 255u, 256u, 65535u}) {
    store_u16(buf, static_cast<uint16_t>(v));
    EXPECT_EQ(load_u16(buf), v);
  }
}

TEST(BytesTest, U32RoundTrip) {
  uint8_t buf[4];
  for (uint32_t v : {0u, 1u, 0xdeadbeefu, std::numeric_limits<uint32_t>::max()}) {
    store_u32(buf, v);
    EXPECT_EQ(load_u32(buf), v);
  }
}

TEST(BytesTest, U64RoundTrip) {
  uint8_t buf[8];
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{0x0123456789abcdefULL},
        std::numeric_limits<uint64_t>::max()}) {
    store_u64(buf, v);
    EXPECT_EQ(load_u64(buf), v);
  }
}

TEST(BytesTest, LittleEndianLayout) {
  uint8_t buf[4];
  store_u32(buf, 0x01020304u);
  EXPECT_EQ(buf[0], 0x04);
  EXPECT_EQ(buf[1], 0x03);
  EXPECT_EQ(buf[2], 0x02);
  EXPECT_EQ(buf[3], 0x01);
}

TEST(BytesTest, FormatBytes) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(4 * kKiB), "4 KiB");
  EXPECT_EQ(format_bytes(kMiB), "1 MiB");
  EXPECT_EQ(format_bytes(3 * kGiB), "3 GiB");
  EXPECT_EQ(format_bytes(kMiB + kMiB / 2), "1.50 MiB");
}

TEST(BytesTest, ParseBytes) {
  EXPECT_EQ(parse_bytes("512"), 512u);
  EXPECT_EQ(parse_bytes("4k"), 4 * kKiB);
  EXPECT_EQ(parse_bytes("64KiB"), 64 * kKiB);
  EXPECT_EQ(parse_bytes("2m"), 2 * kMiB);
  EXPECT_EQ(parse_bytes("1GiB"), kGiB);
  EXPECT_EQ(parse_bytes("100 b"), 100u);
  EXPECT_EQ(parse_bytes(""), 0u);
  EXPECT_EQ(parse_bytes("abc"), 0u);
  EXPECT_EQ(parse_bytes("12x"), 0u);
}

TEST(BytesTest, AlignUp) {
  EXPECT_EQ(align_up(0, 8), 0u);
  EXPECT_EQ(align_up(1, 8), 8u);
  EXPECT_EQ(align_up(8, 8), 8u);
  EXPECT_EQ(align_up(9, 8), 16u);
  EXPECT_EQ(align_up(4095, 4096), 4096u);
}

TEST(BytesTest, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 4), 0u);
  EXPECT_EQ(ceil_div(1, 4), 1u);
  EXPECT_EQ(ceil_div(4, 4), 1u);
  EXPECT_EQ(ceil_div(5, 4), 2u);
}

TEST(BytesTest, Fnv1aIsStableAndSensitive) {
  const std::vector<uint8_t> a{1, 2, 3};
  const std::vector<uint8_t> b{1, 2, 4};
  EXPECT_EQ(fnv1a(a), fnv1a(a));
  EXPECT_NE(fnv1a(a), fnv1a(b));
  EXPECT_NE(fnv1a(a), fnv1a({}));
}

}  // namespace
}  // namespace damkit
