#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace damkit {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(RngTest, UniformRangeFullDomain) {
  // Regression: [0, UINT64_MAX] used to compute `hi - lo + 1`, which wraps
  // to zero and hit uniform()'s bound > 0 CHECK. The full domain must be
  // served directly from the raw generator instead.
  Rng rng(11);
  bool low_half = false, high_half = false;
  for (int i = 0; i < 256; ++i) {
    const uint64_t v = rng.uniform_range(0, ~0ULL);
    (v < (1ULL << 63) ? low_half : high_half) = true;
  }
  EXPECT_TRUE(low_half);
  EXPECT_TRUE(high_half);
  // Nearly-full range still respects the lower bound.
  for (int i = 0; i < 256; ++i) {
    EXPECT_GE(rng.uniform_range(1, ~0ULL), 1u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.uniform_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    hit_lo |= (v == 5);
    hit_hi |= (v == 8);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[static_cast<size_t>(rng.uniform(kBuckets))];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets / 5);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(17);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ReseedResetsStream) {
  Rng rng(21);
  const uint64_t first = rng.next();
  rng.next();
  rng.reseed(21);
  EXPECT_EQ(rng.next(), first);
}

TEST(ZipfianTest, RanksWithinRange) {
  Rng rng(23);
  Zipfian z(1000, 0.99);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(z.sample(rng), 1000u);
}

TEST(ZipfianTest, SkewFavorsLowRanks) {
  Rng rng(29);
  Zipfian z(10000, 0.99);
  int hot = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    if (z.sample(rng) < 100) ++hot;  // top 1% of ranks
  }
  // Under theta=0.99 the top 1% draw a large share; uniform would be ~1%.
  EXPECT_GT(hot, kSamples / 5);
}

TEST(ZipfianTest, LowThetaApproachesUniform) {
  Rng rng(31);
  Zipfian z(1000, 0.01);
  int hot = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (z.sample(rng) < 10) ++hot;  // top 1%
  }
  EXPECT_LT(hot, kSamples / 20);  // far from heavily skewed
}

TEST(ZipfianTest, ZetaCacheDoesNotChangeSamples) {
  // The (theta, n) zeta cache must be a pure memoization: a Zipfian built
  // cold, one built after the cache was warmed by a *larger* n for the same
  // theta (incremental-extension path), and a repeat construction (cache-hit
  // path) must all produce bit-identical sample streams for the same seed.
  const auto draw = [](Zipfian& z, uint64_t seed) {
    Rng rng(seed);
    std::vector<uint64_t> out(256);
    for (auto& v : out) v = z.sample(rng);
    return out;
  };
  Zipfian cold(600, 0.77);
  const std::vector<uint64_t> baseline = draw(cold, 5150);

  Zipfian warm_larger(1234, 0.77);  // extends the cached partial sum past 600
  (void)warm_larger;
  Zipfian after_extend(600, 0.77);
  EXPECT_EQ(draw(after_extend, 5150), baseline);

  Zipfian repeat(600, 0.77);  // pure cache hit
  EXPECT_EQ(draw(repeat, 5150), baseline);
}

TEST(ZipfianDeathTest, RejectsBadParameters) {
  EXPECT_DEATH(Zipfian(0, 0.5), "");
  EXPECT_DEATH(Zipfian(10, 0.0), "");
  EXPECT_DEATH(Zipfian(10, 1.0), "");
}

}  // namespace
}  // namespace damkit
