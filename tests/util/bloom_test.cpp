#include "util/bloom.h"

#include <gtest/gtest.h>

#include "kv/slice.h"
#include "util/rng.h"

namespace damkit {
namespace {

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter f(1000, 10.0);
  for (uint64_t i = 0; i < 1000; ++i) f.add(kv::encode_key(i));
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(f.may_contain(kv::encode_key(i))) << i;
  }
}

TEST(BloomTest, FalsePositiveRateNearTarget) {
  BloomFilter f(10000, 10.0);
  for (uint64_t i = 0; i < 10000; ++i) f.add(kv::encode_key(i));
  int fp = 0;
  constexpr int kProbes = 20000;
  for (int i = 0; i < kProbes; ++i) {
    if (f.may_contain(kv::encode_key(1'000'000 + static_cast<uint64_t>(i)))) {
      ++fp;
    }
  }
  // 10 bits/key → ~1%; allow generous slack.
  EXPECT_LT(fp, kProbes * 3 / 100);
  EXPECT_GT(fp, 0);  // a bloom filter that never errs is suspicious
}

TEST(BloomTest, FewerBitsMoreFalsePositives) {
  auto rate = [](double bits) {
    BloomFilter f(5000, bits);
    for (uint64_t i = 0; i < 5000; ++i) f.add(kv::encode_key(i));
    int fp = 0;
    for (int i = 0; i < 10000; ++i) {
      if (f.may_contain(kv::encode_key(9'000'000 + static_cast<uint64_t>(i)))) {
        ++fp;
      }
    }
    return fp;
  };
  EXPECT_GT(rate(4.0), rate(12.0) * 2);
}

TEST(BloomTest, EmptyFilterRejectsEverything) {
  BloomFilter f(0, 10.0);
  EXPECT_FALSE(f.may_contain("anything"));
}

TEST(BloomTest, SerializeRoundTrip) {
  BloomFilter f(500, 8.0);
  for (uint64_t i = 0; i < 500; ++i) f.add(kv::encode_key(i * 3));
  std::vector<uint8_t> image;
  f.serialize(image);
  const BloomFilter g = BloomFilter::deserialize(image);
  EXPECT_EQ(g.bit_count(), f.bit_count());
  EXPECT_EQ(g.hash_count(), f.hash_count());
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(g.may_contain(kv::encode_key(i * 3)));
  }
  // Identical decisions, positive or negative.
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::string k = kv::encode_key(rng.next());
    EXPECT_EQ(f.may_contain(k), g.may_contain(k));
  }
}

TEST(BloomTest, ByteSizeScalesWithKeys) {
  EXPECT_GT(BloomFilter(10000, 10).byte_size(),
            BloomFilter(1000, 10).byte_size());
}

}  // namespace
}  // namespace damkit
