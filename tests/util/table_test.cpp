#include "util/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace damkit {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"Device", "P"});
  t.add_row({"Samsung 860 pro", "3.3"});
  t.add_row({"Sandisk Ultra II", "4.6"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Device"), std::string::npos);
  EXPECT_NE(s.find("Samsung 860 pro"), std::string::npos);
  EXPECT_NE(s.find("4.6"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, ColumnsAreAligned) {
  Table t({"a", "b"});
  t.add_row({"xxxxxxxx", "1"});
  t.add_row({"y", "22"});
  std::istringstream in(t.to_string());
  std::string first, second;
  std::getline(in, first);           // header
  std::getline(in, second);          // rule
  std::string r1, r2;
  std::getline(in, r1);
  std::getline(in, r2);
  EXPECT_EQ(r1.size(), r2.size());
}

TEST(TableTest, CsvEscapesSpecials) {
  Table t({"k", "v"});
  t.add_row({"a,b", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrips) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  const std::string path = testing::TempDir() + "/damkit_table_test.csv";
  ASSERT_TRUE(t.write_csv(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x,y");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(TableTest, WriteCsvFailsOnBadPath) {
  Table t({"x"});
  EXPECT_FALSE(t.write_csv("/nonexistent_dir_damkit/file.csv"));
}

TEST(TableDeathTest, RowWidthMustMatchHeader) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.add_row({"only one"}), "row width");
}

TEST(StrfmtTest, FormatsLikePrintf) {
  EXPECT_EQ(strfmt("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strfmt("%.2f", 3.14159), "3.14");
  EXPECT_EQ(strfmt("empty%s", ""), "empty");
}

}  // namespace
}  // namespace damkit
