#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.h"

namespace damkit {
namespace {

TEST(SummaryTest, Basics) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SummaryTest, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).n, 0u);
  const Summary s = summarize(std::vector<double>{42.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(LinearFitTest, RecoversExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.5 * i + 2.0);
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 3.5, 1e-12);
  EXPECT_NEAR(f.intercept, 2.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
  EXPECT_NEAR(f.rms, 0.0, 1e-9);
}

TEST(LinearFitTest, RecoversNoisyLine) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    x.push_back(i);
    y.push_back(0.7 * i + 10.0 + (rng.uniform_double() - 0.5) * 2.0);
  }
  const LinearFit f = linear_fit(x, y);
  EXPECT_NEAR(f.slope, 0.7, 0.01);
  EXPECT_NEAR(f.intercept, 10.0, 1.5);
  EXPECT_GT(f.r2, 0.999);
}

TEST(LinearFitTest, ConstantXGivesMeanFit) {
  const std::vector<double> x{2, 2, 2};
  const std::vector<double> y{1, 2, 3};
  const LinearFit f = linear_fit(x, y);
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
  EXPECT_DOUBLE_EQ(f.intercept, 2.0);
}

TEST(SegmentedFitTest, RecoversKnee) {
  // Flat at 10 until x = 8, then slope 2: the PDAM experiment's shape.
  std::vector<double> x, y;
  for (int i = 1; i <= 32; ++i) {
    x.push_back(i);
    y.push_back(i <= 8 ? 10.0 : 10.0 + 2.0 * (i - 8));
  }
  const SegmentedFit f = segmented_linear_fit(x, y);
  EXPECT_NEAR(f.left.slope, 0.0, 1e-9);
  EXPECT_NEAR(f.right.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.breakpoint, 8.0, 0.5);
  EXPECT_GT(f.r2, 0.999);
}

TEST(SegmentedFitTest, RecoversKneeWithNoise) {
  Rng rng(7);
  std::vector<double> x, y;
  for (int i = 1; i <= 64; ++i) {
    const double noise = (rng.uniform_double() - 0.5) * 0.4;
    x.push_back(i);
    y.push_back((i <= 12 ? 20.0 : 20.0 + 1.5 * (i - 12)) + noise);
  }
  const SegmentedFit f = segmented_linear_fit(x, y);
  EXPECT_NEAR(f.breakpoint, 12.0, 1.5);
  EXPECT_NEAR(f.right.slope, 1.5, 0.05);
  EXPECT_GT(f.r2, 0.99);
}

TEST(SegmentedFitDeathTest, NeedsFourPoints) {
  const std::vector<double> x{1, 2, 3};
  const std::vector<double> y{1, 2, 3};
  EXPECT_DEATH(segmented_linear_fit(x, y), "");
}

TEST(RSquaredTest, PerfectAndPoorPredictions) {
  const std::vector<double> obs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r_squared(obs, obs), 1.0);
  const std::vector<double> bad{4, 3, 2, 1};
  EXPECT_LT(r_squared(obs, bad), 0.0);  // worse than predicting the mean
}

}  // namespace
}  // namespace damkit
