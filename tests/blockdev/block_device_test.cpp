#include "blockdev/block_device.h"

#include <gtest/gtest.h>

#include "sim/hdd.h"
#include "util/bytes.h"

namespace damkit::blockdev {
namespace {

class NodeStoreTest : public testing::Test {
 protected:
  NodeStoreTest() : dev_(make_config()), io_(dev_) {}

  static sim::HddConfig make_config() {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 1ULL * kGiB;
    return cfg;
  }

  sim::HddDevice dev_;
  sim::IoContext io_;
};

TEST_F(NodeStoreTest, WriteThenReadRoundTrip) {
  NodeStore store(dev_, io_, 64 * kKiB);
  const uint64_t id = store.allocate();
  std::vector<uint8_t> image(1000);
  for (size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<uint8_t>(i * 3);
  }
  store.write_node(id, image);
  std::vector<uint8_t> back;
  store.read_node(id, back);
  ASSERT_EQ(back.size(), 64u * kKiB);  // whole extent
  for (size_t i = 0; i < image.size(); ++i) EXPECT_EQ(back[i], image[i]);
  for (size_t i = image.size(); i < back.size(); ++i) EXPECT_EQ(back[i], 0);
}

TEST_F(NodeStoreTest, WholeNodeIoCharged) {
  NodeStore store(dev_, io_, 64 * kKiB);
  const uint64_t id = store.allocate();
  store.write_node(id, std::vector<uint8_t>(10));
  EXPECT_EQ(dev_.stats().bytes_written, 64u * kKiB);  // padded write
  std::vector<uint8_t> buf;
  store.read_node(id, buf);
  EXPECT_EQ(dev_.stats().bytes_read, 64u * kKiB);
}

TEST_F(NodeStoreTest, SpanReadChargesOnlySpan) {
  NodeStore store(dev_, io_, 64 * kKiB);
  const uint64_t id = store.allocate();
  std::vector<uint8_t> image(64 * kKiB, 7);
  store.write_node(id, image);
  dev_.clear_stats();
  std::vector<uint8_t> part(4096);
  store.read_span(id, 8192, part);
  EXPECT_EQ(dev_.stats().bytes_read, 4096u);
  for (uint8_t b : part) EXPECT_EQ(b, 7);
}

TEST_F(NodeStoreTest, TouchReadAdvancesClockWithoutPayload) {
  NodeStore store(dev_, io_, 64 * kKiB);
  const uint64_t id = store.allocate();
  const sim::SimTime before = io_.now();
  store.touch_read(id, 0, 4096);
  EXPECT_GT(io_.now(), before);
  EXPECT_EQ(dev_.stats().bytes_read, 4096u);
}

TEST_F(NodeStoreTest, PeekNodeIsFreeOfTimingCharges) {
  NodeStore store(dev_, io_, 64 * kKiB);
  const uint64_t id = store.allocate();
  store.write_node(id, std::vector<uint8_t>(16, 9));
  const sim::SimTime before = io_.now();
  dev_.clear_stats();
  std::vector<uint8_t> buf;
  store.peek_node(id, buf);
  EXPECT_EQ(io_.now(), before);
  EXPECT_EQ(dev_.stats().reads, 0u);
  EXPECT_EQ(buf[0], 9);
}

TEST_F(NodeStoreTest, DistinctNodesDoNotAlias) {
  NodeStore store(dev_, io_, 4 * kKiB);
  const uint64_t a = store.allocate();
  const uint64_t b = store.allocate();
  store.write_node(a, std::vector<uint8_t>(10, 0xaa));
  store.write_node(b, std::vector<uint8_t>(10, 0xbb));
  std::vector<uint8_t> buf;
  store.read_node(a, buf);
  EXPECT_EQ(buf[0], 0xaa);
  store.read_node(b, buf);
  EXPECT_EQ(buf[0], 0xbb);
}

TEST_F(NodeStoreTest, FreeAndReuse) {
  NodeStore store(dev_, io_, 4 * kKiB);
  const uint64_t a = store.allocate();
  EXPECT_EQ(store.nodes_in_use(), 1u);
  store.free(a);
  EXPECT_EQ(store.nodes_in_use(), 0u);
  EXPECT_EQ(store.allocate(), a);
}

TEST_F(NodeStoreTest, BaseOffsetRespected) {
  NodeStore store(dev_, io_, 4 * kKiB, 1 * kMiB);
  const uint64_t id = store.allocate();
  store.write_node(id, std::vector<uint8_t>(4, 0x11));
  // The byte must land at base offset in the underlying device.
  std::vector<uint8_t> raw(1);
  dev_.read_bytes(1 * kMiB, raw);
  EXPECT_EQ(raw[0], 0x11);
}

TEST_F(NodeStoreTest, ReadNodesMatchesSerialPayloads) {
  NodeStore store(dev_, io_, 4 * kKiB);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    const uint64_t id = store.allocate();
    store.write_node(id, std::vector<uint8_t>(16, static_cast<uint8_t>(i)));
    ids.push_back(id);
  }
  dev_.clear_stats();
  std::vector<std::vector<uint8_t>> images;
  store.read_nodes(ids, images);
  ASSERT_EQ(images.size(), 4u);
  for (size_t i = 0; i < images.size(); ++i) {
    ASSERT_EQ(images[i].size(), 4u * kKiB);
    EXPECT_EQ(images[i][0], static_cast<uint8_t>(i));
  }
  // Whole-extent charge for every node in the batch.
  EXPECT_EQ(dev_.stats().bytes_read, 4u * 4 * kKiB);
  EXPECT_EQ(dev_.stats().reads, 4u);
}

TEST_F(NodeStoreTest, WriteNodesRoundTripsAndPads) {
  NodeStore store(dev_, io_, 4 * kKiB);
  const uint64_t a = store.allocate();
  const uint64_t b = store.allocate();
  const std::vector<uint8_t> ia(10, 0xaa);
  const std::vector<uint8_t> ib(20, 0xbb);
  const NodeStore::NodeImage writes[] = {{a, ia}, {b, ib}};
  store.write_nodes(writes);
  EXPECT_EQ(dev_.stats().bytes_written, 2u * 4 * kKiB);  // padded extents
  std::vector<uint8_t> back;
  store.read_node(a, back);
  EXPECT_EQ(back[0], 0xaa);
  EXPECT_EQ(back[10], 0);  // zero-padded past the image
  store.read_node(b, back);
  EXPECT_EQ(back[19], 0xbb);
}

TEST_F(NodeStoreTest, BatchAdvancesClockToMaxCompletion) {
  NodeStore store(dev_, io_, 64 * kKiB);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(store.allocate());

  // Serial baseline on an identical device: clock advances by the sum.
  sim::HddDevice serial_dev(make_config());
  sim::IoContext serial_io(serial_dev);
  NodeStore serial_store(serial_dev, serial_io, 64 * kKiB);
  for (int i = 0; i < 8; ++i) serial_store.allocate();
  for (uint64_t id : ids) serial_store.touch_read(id, 0, 64 * kKiB);

  std::vector<std::vector<uint8_t>> images;
  store.read_nodes(ids, images);
  // The HDD still serializes on its single actuator, but the batch window
  // lets it reorder seeks — never slower than the one-at-a-time path.
  EXPECT_LE(io_.now(), serial_io.now());
  EXPECT_GT(io_.now(), 0u);
}

TEST_F(NodeStoreTest, TouchReadBatchChargesEverySpan) {
  NodeStore store(dev_, io_, 64 * kKiB);
  const uint64_t a = store.allocate();
  const uint64_t b = store.allocate();
  const sim::SimTime before = io_.now();
  const NodeStore::NodeSpan spans[] = {{a, 0, 4096}, {b, 8192, 1024}};
  store.touch_read_batch(spans);
  EXPECT_GT(io_.now(), before);
  EXPECT_EQ(dev_.stats().reads, 2u);
  EXPECT_EQ(dev_.stats().bytes_read, 4096u + 1024u);
}

using NodeStoreDeathTest = NodeStoreTest;

TEST_F(NodeStoreDeathTest, OversizeImageAborts) {
  NodeStore store(dev_, io_, 4 * kKiB);
  const uint64_t id = store.allocate();
  EXPECT_DEATH(store.write_node(id, std::vector<uint8_t>(5 * kKiB)),
               "exceeds extent");
}

TEST_F(NodeStoreDeathTest, SpanPastExtentAborts) {
  NodeStore store(dev_, io_, 4 * kKiB);
  const uint64_t id = store.allocate();
  std::vector<uint8_t> buf(4096);
  EXPECT_DEATH(store.read_span(id, 1024, buf), "");
}

}  // namespace
}  // namespace damkit::blockdev
