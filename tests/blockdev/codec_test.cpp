#include "blockdev/codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "blockdev/block_device.h"
#include "sim/hdd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::blockdev {
namespace {

std::vector<uint8_t> random_bytes(Rng& rng, size_t n) {
  std::vector<uint8_t> out(n);
  for (auto& b : out) b = static_cast<uint8_t>(rng.uniform(256));
  return out;
}

// A block of sorted fixed-width records with long shared prefixes — the
// shape both codecs are built for.
std::vector<uint8_t> sorted_records(size_t count) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i < count; ++i) {
    char key[32];
    std::snprintf(key, sizeof(key), "user/%08zu/profile", i);
    out.insert(out.end(), key, key + std::strlen(key));
    out.insert(out.end(), 16, static_cast<uint8_t>(i & 0xff));
  }
  return out;
}

TEST(CodecKindTest, NamesRoundTrip) {
  for (const CodecKind kind : kAllCodecKinds) {
    const auto parsed = parse_codec_kind(codec_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_EQ(parse_codec_kind("default"), CodecKind::kDefault);
  EXPECT_FALSE(parse_codec_kind("zstd").has_value());
  EXPECT_FALSE(parse_codec_kind("").has_value());
}

TEST(CodecVarintTest, RoundTripBoundaryValues) {
  const uint64_t values[] = {0,     1,       127,        128,
                             16383, 16384,   0xffffffff, 1ull << 62,
                             UINT64_MAX};
  for (const uint64_t v : values) {
    std::vector<uint8_t> buf;
    put_uvarint(buf, v);
    size_t pos = 0;
    uint64_t back = 0;
    ASSERT_TRUE(get_uvarint(buf, pos, &back)) << v;
    EXPECT_EQ(back, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(CodecVarintTest, TruncatedAndOverlongInputsFail) {
  std::vector<uint8_t> buf;
  put_uvarint(buf, UINT64_MAX);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(get_uvarint(std::span(buf.data(), cut), pos, &v));
  }
  // Eleven continuation bytes never terminate within the 64-bit budget.
  const std::vector<uint8_t> overlong(11, 0x80);
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(get_uvarint(overlong, pos, &v));
}

class CodecRoundTripTest : public testing::TestWithParam<CodecKind> {};

TEST_P(CodecRoundTripTest, RoundTripsVariedPayloads) {
  const auto codec = make_codec(GetParam());
  Rng rng(7);
  std::vector<std::vector<uint8_t>> payloads;
  payloads.push_back({});                                 // empty
  payloads.push_back({42});                               // single byte
  payloads.push_back(std::vector<uint8_t>(4096, 0));      // all zeros
  payloads.push_back(sorted_records(100));                // compressible
  payloads.push_back(random_bytes(rng, 4096));            // incompressible
  auto mixed = sorted_records(50);
  const auto noise = random_bytes(rng, 1000);
  mixed.insert(mixed.end(), noise.begin(), noise.end());
  payloads.push_back(std::move(mixed));
  for (const auto& raw : payloads) {
    std::vector<uint8_t> frame, back;
    codec->encode(raw, frame);
    ASSERT_TRUE(codec->decode(frame, back)) << raw.size();
    EXPECT_EQ(back, raw);
  }
}

TEST_P(CodecRoundTripTest, EveryTruncatedFrameFailsToDecode) {
  const auto codec = make_codec(GetParam());
  const auto raw = sorted_records(60);
  std::vector<uint8_t> frame, back;
  codec->encode(raw, frame);
  for (size_t cut = 0; cut < frame.size(); ++cut) {
    EXPECT_FALSE(codec->decode(std::span(frame.data(), cut), back))
        << "torn frame of " << cut << "/" << frame.size()
        << " bytes decoded";
  }
}

TEST_P(CodecRoundTripTest, AnyKindDecodesAnyKindsFrames) {
  // The frame format is shared; kinds differ only in match search.
  const auto encoder = make_codec(GetParam());
  const auto raw = sorted_records(40);
  std::vector<uint8_t> frame;
  encoder->encode(raw, frame);
  for (const CodecKind other : kAllCodecKinds) {
    std::vector<uint8_t> back;
    ASSERT_TRUE(make_codec(other)->decode(frame, back));
    EXPECT_EQ(back, raw);
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CodecRoundTripTest,
                         testing::ValuesIn(kAllCodecKinds),
                         [](const auto& info) {
                           return std::string(codec_kind_name(info.param));
                         });

TEST(CodecFrameTest, MalformedFramesAreRejectedNotAborted) {
  const auto codec = make_codec(CodecKind::kLz);
  std::vector<uint8_t> back;

  {  // Unknown mode byte.
    std::vector<uint8_t> frame;
    put_uvarint(frame, 4);
    frame.push_back(7);
    frame.insert(frame.end(), {1, 2, 3, 4});
    EXPECT_FALSE(codec->decode(frame, back));
  }
  {  // Raw payload shorter than the declared length.
    std::vector<uint8_t> frame;
    put_uvarint(frame, 100);
    frame.push_back(0);
    frame.insert(frame.end(), {1, 2, 3});
    EXPECT_FALSE(codec->decode(frame, back));
  }
  {  // Match before any output (dist > produced bytes).
    std::vector<uint8_t> frame;
    put_uvarint(frame, 8);
    frame.push_back(1);
    put_uvarint(frame, 0);  // no literals
    put_uvarint(frame, 8);  // match_len
    put_uvarint(frame, 1);  // dist 1 with empty output
    EXPECT_FALSE(codec->decode(frame, back));
  }
  {  // Zero distance.
    std::vector<uint8_t> frame;
    put_uvarint(frame, 8);
    frame.push_back(1);
    put_uvarint(frame, 2);
    frame.insert(frame.end(), {9, 9});
    put_uvarint(frame, 6);
    put_uvarint(frame, 0);
    EXPECT_FALSE(codec->decode(frame, back));
  }
  {  // Match overruns the declared raw length.
    std::vector<uint8_t> frame;
    put_uvarint(frame, 4);
    frame.push_back(1);
    put_uvarint(frame, 2);
    frame.insert(frame.end(), {9, 9});
    put_uvarint(frame, 6);  // 2 + 6 > 4
    put_uvarint(frame, 1);
    EXPECT_FALSE(codec->decode(frame, back));
  }
  {  // Trailing garbage after a complete reconstruction.
    const std::vector<uint8_t> raw{1, 2, 3, 4};
    std::vector<uint8_t> frame;
    codec->encode(raw, frame);
    frame.push_back(0xee);
    EXPECT_FALSE(codec->decode(frame, back));
  }
  {  // Empty frame.
    EXPECT_FALSE(codec->decode({}, back));
  }
}

TEST(CodecFrameTest, PrefixCodecCompressesSortedRecords) {
  const auto codec = make_codec(CodecKind::kPrefix);
  const auto raw = sorted_records(200);
  std::vector<uint8_t> frame;
  codec->encode(raw, frame);
  EXPECT_LT(frame.size(), raw.size() * 7 / 10)
      << "prefix truncation should remove most shared key prefixes";
  EXPECT_LT(codec->stats().ratio(), 0.7);
  EXPECT_EQ(codec->stats().bytes_saved(), raw.size() - frame.size());
}

TEST(CodecFrameTest, LzAtLeastMatchesPrefixOnRepetitiveData) {
  const auto raw = sorted_records(200);
  std::vector<uint8_t> prefix_frame, lz_frame;
  make_codec(CodecKind::kPrefix)->encode(raw, prefix_frame);
  make_codec(CodecKind::kLz)->encode(raw, lz_frame);
  EXPECT_LE(lz_frame.size(), prefix_frame.size());
}

TEST(CodecFrameTest, IncompressibleInputCostsOnlyTheHeader) {
  Rng rng(11);
  const auto raw = random_bytes(rng, 4096);
  for (const CodecKind kind : kAllCodecKinds) {
    const auto codec = make_codec(kind);
    std::vector<uint8_t> frame;
    codec->encode(raw, frame);
    EXPECT_LE(frame.size(), raw.size() + 6) << codec_kind_name(kind);
    EXPECT_EQ(codec->stats().raw_fallbacks, 1u)
        << "noise must fall back to a verbatim frame";
    std::vector<uint8_t> back;
    ASSERT_TRUE(codec->decode(frame, back));
    EXPECT_EQ(back, raw);
  }
}

TEST(CodecFrameTest, StatsAccumulateAndClear) {
  const auto codec = make_codec(CodecKind::kLz);
  const auto raw = sorted_records(50);
  std::vector<uint8_t> frame, back;
  codec->encode(raw, frame);
  codec->encode(raw, frame);
  ASSERT_TRUE(codec->decode(frame, back));
  EXPECT_EQ(codec->stats().encode_calls, 2u);
  EXPECT_EQ(codec->stats().decode_calls, 1u);
  EXPECT_EQ(codec->stats().raw_bytes, 2 * raw.size());
  EXPECT_GT(codec->stats().bytes_saved(), 0u);
  codec->clear_stats();
  EXPECT_EQ(codec->stats().encode_calls, 0u);
  EXPECT_EQ(codec->stats().ratio(), 1.0);
}

// ---------------------------------------------------------------------------
// NodeStore with a codec: partial-extent IO, charging, and fallbacks.
// ---------------------------------------------------------------------------

class NodeStoreCodecTest : public testing::TestWithParam<CodecKind> {
 protected:
  NodeStoreCodecTest() : dev_(make_config()), io_(dev_) {}

  static sim::HddConfig make_config() {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 1ULL * kGiB;
    return cfg;
  }

  sim::HddDevice dev_;
  sim::IoContext io_;
};

TEST_P(NodeStoreCodecTest, CompressedWriteChargesStoredBytesOnly) {
  NodeStore store(dev_, io_, 64 * kKiB, 0, GetParam());
  const uint64_t id = store.allocate();
  const auto image = sorted_records(500);  // compressible, < node_bytes
  store.write_node(id, image);
  const uint64_t stored = store.stored_bytes(id);
  EXPECT_GT(stored, 0u);
  EXPECT_LT(stored, 64u * kKiB);
  EXPECT_EQ(dev_.stats().bytes_written, stored);

  dev_.clear_stats();
  std::vector<uint8_t> back;
  store.read_node(id, back);
  EXPECT_EQ(dev_.stats().bytes_read, stored);  // partial-extent read
  ASSERT_EQ(back.size(), 64u * kKiB);
  EXPECT_EQ(std::memcmp(back.data(), image.data(), image.size()), 0);
  for (size_t i = image.size(); i < back.size(); ++i) {
    ASSERT_EQ(back[i], 0) << i;
  }
}

TEST_P(NodeStoreCodecTest, IncompressibleImageFallsBackToRawExtent) {
  NodeStore store(dev_, io_, 4 * kKiB, 0, GetParam());
  const uint64_t id = store.allocate();
  Rng rng(23);
  const auto image = random_bytes(rng, 4 * kKiB);  // fills the extent
  store.write_node(id, image);
  // A frame would exceed the extent, so the raw padded image is stored.
  EXPECT_EQ(store.stored_bytes(id), 4u * kKiB);
  EXPECT_EQ(dev_.stats().bytes_written, 4u * kKiB);
  std::vector<uint8_t> back;
  store.read_node(id, back);
  EXPECT_EQ(back, image);
}

TEST_P(NodeStoreCodecTest, SpanAndTouchChargesScaleWithStoredSize) {
  NodeStore store(dev_, io_, 64 * kKiB, 0, GetParam());
  const uint64_t id = store.allocate();
  std::vector<uint8_t> image(64 * kKiB, 7);  // collapses to almost nothing
  store.write_node(id, image);
  const uint64_t stored = store.stored_bytes(id);
  ASSERT_LT(stored, 64u * kKiB / 100);

  dev_.clear_stats();
  std::vector<uint8_t> span(16 * kKiB);
  store.read_span(id, 8192, span);
  // A quarter of the node charges about a quarter of the frame.
  EXPECT_LE(dev_.stats().bytes_read, stored / 4 + 1);
  for (uint8_t b : span) ASSERT_EQ(b, 7);

  dev_.clear_stats();
  store.touch_read(id, 0, 64 * kKiB);
  EXPECT_EQ(dev_.stats().bytes_read, stored);  // whole node = whole frame
}

TEST_P(NodeStoreCodecTest, BatchPathsRoundTripCompressedImages) {
  NodeStore store(dev_, io_, 16 * kKiB, 0, GetParam());
  Rng rng(5);
  std::vector<uint64_t> ids;
  std::vector<std::vector<uint8_t>> images;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(store.allocate());
    // Alternate compressible and incompressible images in one batch.
    images.push_back(i % 2 == 0 ? sorted_records(80 + i)
                                : random_bytes(rng, 16 * kKiB));
  }
  std::vector<NodeStore::NodeImage> writes;
  for (size_t i = 0; i < ids.size(); ++i) writes.push_back({ids[i], images[i]});
  store.write_nodes(writes);
  uint64_t stored_total = 0;
  for (const uint64_t id : ids) stored_total += store.stored_bytes(id);
  EXPECT_EQ(dev_.stats().bytes_written, stored_total);
  EXPECT_LT(stored_total, 6u * 16 * kKiB);

  dev_.clear_stats();
  std::vector<std::vector<uint8_t>> back;
  store.read_nodes(ids, back);
  EXPECT_EQ(dev_.stats().bytes_read, stored_total);
  ASSERT_EQ(back.size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_EQ(back[i].size(), 16u * kKiB);
    EXPECT_EQ(
        std::memcmp(back[i].data(), images[i].data(), images[i].size()), 0)
        << i;
  }
}

TEST_P(NodeStoreCodecTest, FreeResetsStoredLength) {
  NodeStore store(dev_, io_, 16 * kKiB, 0, GetParam());
  const uint64_t id = store.allocate();
  store.write_node(id, sorted_records(100));
  ASSERT_LT(store.stored_bytes(id), 16u * kKiB);  // compressed
  store.free(id);
  ASSERT_EQ(store.allocate(), id);  // slot reuse
  // Never-written nodes report the full extent (read raw, full charge).
  EXPECT_EQ(store.stored_bytes(id), 16u * kKiB);
}

TEST_P(NodeStoreCodecTest, PeekServesDecodedPayloadWithoutTiming) {
  NodeStore store(dev_, io_, 16 * kKiB, 0, GetParam());
  const uint64_t id = store.allocate();
  const auto image = sorted_records(100);
  store.write_node(id, image);
  const sim::SimTime before = io_.now();
  dev_.clear_stats();
  std::vector<uint8_t> back;
  store.peek_node(id, back);
  EXPECT_EQ(io_.now(), before);
  EXPECT_EQ(dev_.stats().reads, 0u);
  EXPECT_EQ(std::memcmp(back.data(), image.data(), image.size()), 0);
}

INSTANTIATE_TEST_SUITE_P(Codecs, NodeStoreCodecTest,
                         testing::Values(CodecKind::kPrefix, CodecKind::kLz),
                         [](const auto& info) {
                           return std::string(codec_kind_name(info.param));
                         });

TEST(NodeStoreIdentityTest, ExplicitIdentityMatchesDefaultTiming) {
  sim::HddConfig cfg;
  cfg.capacity_bytes = 1ULL * kGiB;
  sim::HddDevice dev_a(cfg), dev_b(cfg);
  sim::IoContext io_a(dev_a), io_b(dev_b);
  NodeStore plain(dev_a, io_a, 16 * kKiB);
  NodeStore ident(dev_b, io_b, 16 * kKiB, 0, CodecKind::kIdentity);
  const uint64_t a = plain.allocate();
  const uint64_t b = ident.allocate();
  const auto image = sorted_records(100);
  plain.write_node(a, image);
  ident.write_node(b, image);
  std::vector<uint8_t> buf;
  plain.read_node(a, buf);
  ident.read_node(b, buf);
  EXPECT_EQ(io_a.now(), io_b.now());
  EXPECT_EQ(dev_a.stats().bytes_written, dev_b.stats().bytes_written);
  EXPECT_EQ(ident.codec_kind(), CodecKind::kIdentity);
  EXPECT_EQ(ident.stored_bytes(b), 16u * kKiB)  // raw, unframed extent
      << "identity must bypass the codec entirely";
}

}  // namespace
}  // namespace damkit::blockdev
