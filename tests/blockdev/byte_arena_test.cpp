#include "blockdev/byte_arena.h"

#include <gtest/gtest.h>

#include "sim/hdd.h"
#include "util/bytes.h"

namespace damkit::blockdev {
namespace {

TEST(ByteArenaTest, AllocatesAlignedDisjointRanges) {
  sim::HddConfig cfg;
  cfg.capacity_bytes = 1ULL * kGiB;
  sim::HddDevice dev(cfg);
  ByteArena arena(dev, 4096);
  const uint64_t a = arena.allocate(100);
  const uint64_t b = arena.allocate(5000);
  const uint64_t c = arena.allocate(1);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(c, b + 5000);
  EXPECT_EQ(arena.live_bytes(), 5101u);
}

TEST(ByteArenaTest, FreeTrimsAndAccounts) {
  sim::HddConfig cfg;
  cfg.capacity_bytes = 1ULL * kGiB;
  sim::HddDevice dev(cfg);
  ByteArena arena(dev, 0);
  const uint64_t off = arena.allocate(256 * 1024);
  std::vector<uint8_t> data(256 * 1024, 0xab);
  dev.write_bytes(off, data);
  EXPECT_GT(dev.resident_host_bytes(), 0u);
  arena.free(off, 256 * 1024);
  EXPECT_EQ(arena.live_bytes(), 0u);
  EXPECT_EQ(arena.freed_bytes(), 256u * 1024);
  // Trimmed range reads back as zero.
  std::vector<uint8_t> back(1024);
  dev.read_bytes(off, back);
  for (uint8_t v : back) EXPECT_EQ(v, 0);
}

TEST(ByteArenaDeathTest, ExhaustionAborts) {
  sim::HddConfig cfg;
  cfg.capacity_bytes = 16 * kMiB;
  sim::HddDevice dev(cfg);
  ByteArena arena(dev, 0);
  arena.allocate(15 * kMiB);
  EXPECT_DEATH(arena.allocate(2 * kMiB), "exhausted");
}

}  // namespace
}  // namespace damkit::blockdev
