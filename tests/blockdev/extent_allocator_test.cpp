#include "blockdev/extent_allocator.h"

#include <gtest/gtest.h>

#include <set>

namespace damkit::blockdev {
namespace {

TEST(ExtentAllocatorTest, SequentialAllocation) {
  ExtentAllocator alloc(0, 4096, 10);
  EXPECT_EQ(alloc.allocate(), 0u);
  EXPECT_EQ(alloc.allocate(), 1u);
  EXPECT_EQ(alloc.allocate(), 2u);
  EXPECT_EQ(alloc.slots_in_use(), 3u);
}

TEST(ExtentAllocatorTest, OffsetsRespectBase) {
  ExtentAllocator alloc(1 << 20, 4096, 10);
  EXPECT_EQ(alloc.offset_of(0), 1u << 20);
  EXPECT_EQ(alloc.offset_of(3), (1u << 20) + 3 * 4096);
}

TEST(ExtentAllocatorTest, FreedSlotsRecycledLifo) {
  ExtentAllocator alloc(0, 4096, 10);
  alloc.allocate();
  const uint64_t b = alloc.allocate();
  alloc.allocate();
  alloc.free(b);
  EXPECT_EQ(alloc.allocate(), b);
}

TEST(ExtentAllocatorTest, InUseCountsFreed) {
  ExtentAllocator alloc(0, 4096, 10);
  const uint64_t a = alloc.allocate();
  alloc.allocate();
  alloc.free(a);
  EXPECT_EQ(alloc.slots_in_use(), 1u);
}

TEST(ExtentAllocatorTest, AllSlotsDistinct) {
  ExtentAllocator alloc(0, 512, 100);
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; ++i) ids.insert(alloc.allocate());
  EXPECT_EQ(ids.size(), 100u);
}

TEST(ExtentAllocatorDeathTest, ExhaustionAborts) {
  ExtentAllocator alloc(0, 4096, 2);
  alloc.allocate();
  alloc.allocate();
  EXPECT_DEATH(alloc.allocate(), "exhausted");
}

TEST(ExtentAllocatorDeathTest, DoubleFreeAborts) {
  ExtentAllocator alloc(0, 4096, 4);
  const uint64_t a = alloc.allocate();
  alloc.free(a);
  EXPECT_DEATH(alloc.free(a), "double free");
}

TEST(ExtentAllocatorDeathTest, FreeNeverAllocatedAborts) {
  ExtentAllocator alloc(0, 4096, 4);
  EXPECT_DEATH(alloc.free(2), "");
}

}  // namespace
}  // namespace damkit::blockdev
