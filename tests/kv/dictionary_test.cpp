// kv::Dictionary contract tests, run against every engine the factory can
// build: the adapters must agree on observable results (only simulated
// cost may differ between engines).
#include "kv/dictionary.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "betree/message.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"

namespace damkit {
namespace {

kv::EngineConfig small_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 256 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 256 * kKiB;
  cfg.lsm.memtable_bytes = 32 * kKiB;
  cfg.lsm.sstable_target_bytes = 64 * kKiB;
  cfg.pdam.buffer_bytes = 32 * kKiB;
  return cfg;
}

TEST(EngineKindTest, NamesRoundTrip) {
  for (const kv::EngineKind kind : kv::kAllEngineKinds) {
    const auto parsed = kv::parse_engine_kind(kv::engine_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(kv::parse_engine_kind("rope").has_value());
  EXPECT_FALSE(kv::parse_engine_kind("").has_value());
}

class DictionaryContractTest : public testing::TestWithParam<kv::EngineKind> {
};

TEST_P(DictionaryContractTest, PutGetEraseFlush) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  const auto dict = kv::make_engine(GetParam(), dev, io, small_config());

  EXPECT_EQ(dict->name(), kv::engine_kind_name(GetParam()));
  for (uint64_t i = 0; i < 2000; ++i) {
    dict->put(kv::encode_key(i), kv::make_value(i, 40));
  }
  dict->flush();
  dict->check_invariants();
  for (uint64_t i = 0; i < 2000; i += 97) {
    EXPECT_EQ(dict->get(kv::encode_key(i)), kv::make_value(i, 40)) << i;
  }
  EXPECT_FALSE(dict->get(kv::encode_key(999999)).has_value());

  dict->erase(kv::encode_key(42));
  EXPECT_FALSE(dict->get(kv::encode_key(42)).has_value());
  dict->put(kv::encode_key(42), "back");
  EXPECT_EQ(dict->get(kv::encode_key(42)), "back");

  EXPECT_GT(dict->height(), 0u);
  EXPECT_GE(dict->cache_hit_rate(), 0.0);
  EXPECT_LE(dict->cache_hit_rate(), 1.0);
}

TEST_P(DictionaryContractTest, UpsertCounterSemantics) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  const auto dict = kv::make_engine(GetParam(), dev, io, small_config());

  // Absent key counts from zero; repeated deltas accumulate identically
  // whether the engine applies them natively (blind message) or emulates
  // read-modify-write — that's the Capabilities contract.
  dict->upsert("ctr", 5);
  dict->upsert("ctr", 7);
  dict->upsert("ctr", -2);
  dict->flush();
  const auto value = dict->get("ctr");
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(betree::decode_counter(*value), 10u);
}

TEST_P(DictionaryContractTest, RangeScanOrderedAndLimited) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  const auto dict = kv::make_engine(GetParam(), dev, io, small_config());

  dict->bulk_load(1000, [](uint64_t i) {
    return std::make_pair(kv::encode_key(i), kv::make_value(i, 30));
  });
  const auto rows = dict->range_scan(kv::encode_key(10), 50);
  ASSERT_EQ(rows.size(), 50u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].first, kv::encode_key(10 + i));
    if (i > 0) EXPECT_LT(rows[i - 1].first, rows[i].first);
  }
  EXPECT_TRUE(dict->range_scan(kv::encode_key(2000), 10).empty());
}

TEST_P(DictionaryContractTest, TryTwinsSucceedOnCleanDevice) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  const auto dict = kv::make_engine(GetParam(), dev, io, small_config());

  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(dict->try_put(kv::encode_key(i), kv::make_value(i, 40)).ok());
  }
  ASSERT_TRUE(dict->try_upsert("ctr", 3).ok());
  const auto got = dict->try_get(kv::encode_key(7));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, kv::make_value(7, 40));
  ASSERT_TRUE(dict->try_erase(kv::encode_key(7)).ok());
  const auto scan = dict->try_range_scan(kv::encode_key(0), 20);
  ASSERT_TRUE(scan.ok());
  EXPECT_FALSE(scan->empty());
  EXPECT_TRUE(dict->checkpoint().ok());

  // Clean device: nothing to retry, nothing given up.
  EXPECT_EQ(dict->retry_counters().retries, 0u);
  EXPECT_EQ(dict->retry_counters().give_ups, 0u);
}

TEST_P(DictionaryContractTest, MetricsExportUnderPrefix) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  const auto dict = kv::make_engine(GetParam(), dev, io, small_config());
  for (uint64_t i = 0; i < 200; ++i) {
    dict->put(kv::encode_key(i), kv::make_value(i, 40));
  }
  dict->flush();

  stats::MetricsRegistry reg;
  dict->export_metrics(reg, "x.");
  // Every engine exports *something*, all of it under the caller's prefix.
  EXPECT_FALSE(reg.empty());
  reg.for_each_counter([](const std::string& name, uint64_t) {
    EXPECT_EQ(name.rfind("x.", 0), 0u) << name;
  });
  reg.for_each_gauge([](const std::string& name, double) {
    EXPECT_EQ(name.rfind("x.", 0), 0u) << name;
  });
}

TEST_P(DictionaryContractTest, CapabilitiesDescribeSingleEngine) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  const auto dict = kv::make_engine(GetParam(), dev, io, small_config());
  const kv::Capabilities& caps = dict->capabilities();
  EXPECT_FALSE(caps.sharded);
  EXPECT_EQ(caps.shard_count, 1);
  EXPECT_TRUE(caps.ordered_scans);
  if (GetParam() == kv::EngineKind::kBeTree ||
      GetParam() == kv::EngineKind::kOptBeTree) {
    EXPECT_TRUE(caps.native_upsert);
  }
  if (GetParam() == kv::EngineKind::kBTree) {
    EXPECT_FALSE(caps.native_upsert);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEngines, DictionaryContractTest,
                         testing::ValuesIn(kv::kAllEngineKinds),
                         [](const auto& info) {
                           return std::string(
                               kv::engine_kind_name(info.param)) == "opt-betree"
                                      ? std::string("opt_betree")
                                      : std::string(
                                            kv::engine_kind_name(info.param));
                         });

}  // namespace
}  // namespace damkit
