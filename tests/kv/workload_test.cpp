#include "kv/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "kv/slice.h"

namespace damkit::kv {
namespace {

TEST(WorkloadTest, KeysStayInSpace) {
  WorkloadSpec spec;
  spec.key_space = 100;
  OpGenerator gen(spec);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(gen.next().key_id, 100u);
}

TEST(WorkloadTest, Deterministic) {
  WorkloadSpec spec;
  spec.seed = 99;
  OpGenerator a(spec), b(spec);
  for (int i = 0; i < 100; ++i) {
    const Op x = a.next(), y = b.next();
    EXPECT_EQ(x.key_id, y.key_id);
    EXPECT_EQ(x.type, y.type);
  }
}

TEST(WorkloadTest, MixRespectsWeights) {
  WorkloadSpec spec;
  spec.get_weight = 0.9;
  spec.put_weight = 0.1;
  OpGenerator gen(spec);
  int gets = 0;
  constexpr int kOps = 10000;
  for (int i = 0; i < kOps; ++i) {
    if (gen.next().type == OpType::kGet) ++gets;
  }
  EXPECT_NEAR(gets, 9000, 300);
}

TEST(WorkloadTest, AllOpTypesReachable) {
  WorkloadSpec spec;
  spec.get_weight = spec.put_weight = spec.delete_weight = spec.scan_weight =
      spec.upsert_weight = 1.0;
  OpGenerator gen(spec);
  std::set<OpType> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(gen.next().type);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(WorkloadTest, ScanOpsCarryLength) {
  WorkloadSpec spec;
  spec.get_weight = 0.0;
  spec.put_weight = 0.0;
  spec.scan_weight = 1.0;
  spec.scan_length = 77;
  OpGenerator gen(spec);
  const Op op = gen.next();
  EXPECT_EQ(op.type, OpType::kScan);
  EXPECT_EQ(op.scan_length, 77u);
}

TEST(WorkloadTest, SequentialWrapsAround) {
  WorkloadSpec spec;
  spec.distribution = Distribution::kSequential;
  spec.key_space = 5;
  spec.get_weight = 1.0;
  spec.put_weight = 0.0;
  OpGenerator gen(spec);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(gen.next().key_id);
  const std::vector<uint64_t> expected{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1};
  EXPECT_EQ(ids, expected);
}

TEST(WorkloadTest, ZipfianSkewsTraffic) {
  WorkloadSpec spec;
  spec.distribution = Distribution::kZipfian;
  spec.key_space = 100000;
  spec.zipf_theta = 0.99;
  OpGenerator gen(spec);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.next().key_id];
  int max_count = 0;
  for (const auto& [id, c] : counts) max_count = std::max(max_count, c);
  // Uniform would give ~1 access per key; zipfian has heavy hitters.
  EXPECT_GT(max_count, 100);
}

TEST(WorkloadTest, ShuffledIdsIsPermutation) {
  const auto ids = shuffled_ids(1000, 3);
  std::vector<uint64_t> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint64_t> expected(1000);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);
  EXPECT_NE(ids, expected);  // shuffled
  EXPECT_EQ(shuffled_ids(1000, 3), ids);  // deterministic
  EXPECT_NE(shuffled_ids(1000, 4), ids);
}

TEST(WorkloadTest, BulkItemMatchesSpec) {
  WorkloadSpec spec;
  spec.key_bytes = 12;
  spec.value_bytes = 50;
  const BulkItem item = bulk_item(42, spec);
  EXPECT_EQ(item.key, encode_key(42, 12));
  EXPECT_EQ(item.value, make_value(42, 50));
}

TEST(WorkloadDeathTest, ZeroWeightsRejected) {
  WorkloadSpec spec;
  spec.get_weight = spec.put_weight = 0.0;
  EXPECT_DEATH(OpGenerator{spec}, "weights");
}

}  // namespace
}  // namespace damkit::kv
