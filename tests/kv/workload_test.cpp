#include "kv/workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

#include "kv/slice.h"

namespace damkit::kv {
namespace {

TEST(WorkloadTest, KeysStayInSpace) {
  WorkloadSpec spec;
  spec.key_space = 100;
  OpGenerator gen(spec);
  for (int i = 0; i < 2000; ++i) EXPECT_LT(gen.next().key_id, 100u);
}

TEST(WorkloadTest, Deterministic) {
  WorkloadSpec spec;
  spec.seed = 99;
  OpGenerator a(spec), b(spec);
  for (int i = 0; i < 100; ++i) {
    const Op x = a.next(), y = b.next();
    EXPECT_EQ(x.key_id, y.key_id);
    EXPECT_EQ(x.type, y.type);
  }
}

TEST(WorkloadTest, MixRespectsWeights) {
  WorkloadSpec spec;
  spec.get_weight = 0.9;
  spec.put_weight = 0.1;
  OpGenerator gen(spec);
  int gets = 0;
  constexpr int kOps = 10000;
  for (int i = 0; i < kOps; ++i) {
    if (gen.next().type == OpType::kGet) ++gets;
  }
  EXPECT_NEAR(gets, 9000, 300);
}

TEST(WorkloadTest, AllOpTypesReachable) {
  WorkloadSpec spec;
  spec.get_weight = spec.put_weight = spec.delete_weight = spec.scan_weight =
      spec.upsert_weight = 1.0;
  OpGenerator gen(spec);
  std::set<OpType> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(gen.next().type);
  EXPECT_EQ(seen.size(), 5u);
}

TEST(WorkloadTest, ScanOpsCarryLength) {
  WorkloadSpec spec;
  spec.get_weight = 0.0;
  spec.put_weight = 0.0;
  spec.scan_weight = 1.0;
  spec.scan_length = 77;
  OpGenerator gen(spec);
  const Op op = gen.next();
  EXPECT_EQ(op.type, OpType::kScan);
  EXPECT_EQ(op.scan_length, 77u);
}

TEST(WorkloadTest, SequentialWrapsAround) {
  WorkloadSpec spec;
  spec.distribution = Distribution::kSequential;
  spec.key_space = 5;
  spec.get_weight = 1.0;
  spec.put_weight = 0.0;
  OpGenerator gen(spec);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 12; ++i) ids.push_back(gen.next().key_id);
  const std::vector<uint64_t> expected{0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1};
  EXPECT_EQ(ids, expected);
}

TEST(WorkloadTest, ZipfianSkewsTraffic) {
  WorkloadSpec spec;
  spec.distribution = Distribution::kZipfian;
  spec.key_space = 100000;
  spec.zipf_theta = 0.99;
  OpGenerator gen(spec);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[gen.next().key_id];
  int max_count = 0;
  for (const auto& [id, c] : counts) max_count = std::max(max_count, c);
  // Uniform would give ~1 access per key; zipfian has heavy hitters.
  EXPECT_GT(max_count, 100);
}

TEST(WorkloadTest, ShuffledIdsIsPermutation) {
  const auto ids = shuffled_ids(1000, 3);
  std::vector<uint64_t> sorted = ids;
  std::sort(sorted.begin(), sorted.end());
  std::vector<uint64_t> expected(1000);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(sorted, expected);
  EXPECT_NE(ids, expected);  // shuffled
  EXPECT_EQ(shuffled_ids(1000, 3), ids);  // deterministic
  EXPECT_NE(shuffled_ids(1000, 4), ids);
}

TEST(WorkloadTest, BulkItemMatchesSpec) {
  WorkloadSpec spec;
  spec.key_bytes = 12;
  spec.value_bytes = 50;
  const BulkItem item = bulk_item(42, spec);
  EXPECT_EQ(item.key, encode_key(42, 12));
  EXPECT_EQ(item.value, make_value(42, 50));
}

TEST(WorkloadDeathTest, ZeroWeightsRejected) {
  WorkloadSpec spec;
  spec.get_weight = spec.put_weight = 0.0;
  EXPECT_DEATH(OpGenerator{spec}, "weights");
}

TEST(WorkloadTest, DefaultOffExtensionsKeepStreamIdentical) {
  // The scenario fields must be pure no-ops at their defaults: a spec with
  // them explicitly zeroed generates the bit-identical op stream (this is
  // what keeps every pinned digest in the repo valid).
  WorkloadSpec base;
  base.distribution = Distribution::kZipfian;
  base.scan_weight = 0.2;
  WorkloadSpec extended = base;
  extended.hot_shift_every = 0;
  extended.hot_shift_stride = 0;
  extended.olap_every = 0;
  extended.olap_len = 0;
  OpGenerator a(base), b(extended);
  for (int i = 0; i < 5000; ++i) {
    const Op x = a.next(), y = b.next();
    ASSERT_EQ(x.key_id, y.key_id);
    ASSERT_EQ(x.type, y.type);
  }
}

TEST(WorkloadTest, HotShiftRotatesKeysNotTypesOrDraws) {
  // With a hot-set shift the op *types* (and hence the RNG stream) are
  // unchanged; only the zipfian key ids move once the first epoch ends.
  WorkloadSpec base;
  base.distribution = Distribution::kZipfian;
  base.key_space = 10000;
  WorkloadSpec shifted = base;
  shifted.hot_shift_every = 100;
  shifted.hot_shift_stride = 17;
  OpGenerator a(base), b(shifted);
  int diverged = 0;
  for (int i = 0; i < 1000; ++i) {
    const Op x = a.next(), y = b.next();
    ASSERT_EQ(x.type, y.type) << i;
    if (i < 100) {
      ASSERT_EQ(x.key_id, y.key_id) << i;  // epoch 0: shift is zero
    } else {
      // Rotation by (i/100)*17 mod key_space of the same drawn id.
      const uint64_t epoch = static_cast<uint64_t>(i) / 100;
      ASSERT_EQ((x.key_id + epoch * 17) % 10000, y.key_id) << i;
      if (x.key_id != y.key_id) ++diverged;
    }
  }
  EXPECT_GT(diverged, 800);
}

TEST(WorkloadTest, OlapPhaseForcesScanBursts) {
  WorkloadSpec spec;
  spec.olap_every = 50;
  spec.olap_len = 10;
  spec.scan_length = 123;
  OpGenerator gen(spec);
  for (int i = 0; i < 600; ++i) {
    const Op op = gen.next();
    const uint64_t phase = static_cast<uint64_t>(i) % 60;
    if (phase >= 50) {
      ASSERT_EQ(op.type, OpType::kScan) << i;
      ASSERT_EQ(op.scan_length, 123u) << i;
    } else {
      // The OLTP window keeps the base mix (no scan weight configured).
      ASSERT_NE(op.type, OpType::kScan) << i;
    }
  }
}

TEST(WorkloadTest, PresetsAreNamedAndValid) {
  const char* names[] = {"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d",
                         "ycsb-e", "ycsb-f", "shift",  "olap"};
  for (const char* name : names) {
    const auto spec = make_workload_preset(name);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_EQ(spec->distribution, Distribution::kZipfian) << name;
    // Every preset must construct a valid generator (weights nonzero, olap
    // fields consistent) and draw ops without dying.
    OpGenerator gen(*spec);
    for (int i = 0; i < 100; ++i) gen.next();
    EXPECT_NE(std::string(workload_preset_names()).find(name),
              std::string::npos)
        << name;
  }
  EXPECT_FALSE(make_workload_preset("ycsb-z").has_value());
  EXPECT_FALSE(make_workload_preset("").has_value());
}

TEST(WorkloadTest, PresetWeightsMatchYcsbDefinitions) {
  EXPECT_DOUBLE_EQ(make_workload_preset("ycsb-a")->get_weight, 0.5);
  EXPECT_DOUBLE_EQ(make_workload_preset("ycsb-a")->put_weight, 0.5);
  EXPECT_DOUBLE_EQ(make_workload_preset("ycsb-b")->get_weight, 0.95);
  EXPECT_DOUBLE_EQ(make_workload_preset("ycsb-c")->get_weight, 1.0);
  EXPECT_GT(make_workload_preset("ycsb-d")->hot_shift_every, 0u);
  EXPECT_DOUBLE_EQ(make_workload_preset("ycsb-e")->scan_weight, 0.95);
  EXPECT_DOUBLE_EQ(make_workload_preset("ycsb-f")->upsert_weight, 0.5);
  EXPECT_GT(make_workload_preset("shift")->hot_shift_stride, 0u);
  EXPECT_GT(make_workload_preset("olap")->olap_len, 0u);
}

TEST(WorkloadTest, BulkItemToReusesBuffers) {
  WorkloadSpec spec;
  BulkItem scratch;
  bulk_item_to(7, spec, &scratch);
  const BulkItem fresh = bulk_item(7, spec);
  EXPECT_EQ(scratch.key, fresh.key);
  EXPECT_EQ(scratch.value, fresh.value);
  // A second same-size fill must not reallocate (the steady-state
  // allocation-free contract is the point of the _to variants).
  const char* key_data = scratch.key.data();
  bulk_item_to(9, spec, &scratch);
  EXPECT_EQ(scratch.key.data(), key_data);
  EXPECT_EQ(scratch.key, bulk_item(9, spec).key);
}

TEST(WorkloadDeathTest, OlapEveryWithoutLenRejected) {
  WorkloadSpec spec;
  spec.olap_every = 100;
  spec.olap_len = 0;
  EXPECT_DEATH(OpGenerator{spec}, "olap_len");
}

}  // namespace
}  // namespace damkit::kv
