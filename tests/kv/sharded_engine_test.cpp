// ShardedEngine: routing, ordered scan merge, per-shard metrics, and the
// single-shard pass-through that keeps k=1 bit-identical to a bare engine.
#include "kv/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "kv/slice.h"
#include "kv/workload.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"
#include "util/table.h"

namespace damkit {
namespace {

kv::EngineConfig small_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 256 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 256 * kKiB;
  cfg.lsm.memtable_bytes = 32 * kKiB;
  cfg.lsm.sstable_target_bytes = 64 * kKiB;
  cfg.pdam.buffer_bytes = 32 * kKiB;
  return cfg;
}

TEST(ShardedEngineTest, HashRoutingMatchesShardHash) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::ShardedConfig sharded;
  sharded.shards = 4;
  kv::ShardedEngine engine(kv::EngineKind::kBTree, dev, io, small_config(),
                           sharded);
  for (uint64_t i = 0; i < 200; ++i) {
    const std::string key = kv::encode_key(i);
    EXPECT_EQ(engine.shard_of(key), kv::shard_hash(key) % 4) << key;
  }
}

TEST(ShardedEngineTest, RangePartitionRouting) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::ShardedConfig sharded;
  sharded.shards = 3;
  sharded.partition = kv::ShardedConfig::Partition::kRange;
  sharded.range_splits = {"g", "p"};
  kv::ShardedEngine engine(kv::EngineKind::kBTree, dev, io, small_config(),
                           sharded);
  // Shard i holds [splits[i-1], splits[i]).
  EXPECT_EQ(engine.shard_of("a"), 0u);
  EXPECT_EQ(engine.shard_of("f"), 0u);
  EXPECT_EQ(engine.shard_of("g"), 1u);
  EXPECT_EQ(engine.shard_of("o"), 1u);
  EXPECT_EQ(engine.shard_of("p"), 2u);
  EXPECT_EQ(engine.shard_of("z"), 2u);
}

class ShardedRoutingTest : public testing::TestWithParam<kv::EngineKind> {};

TEST_P(ShardedRoutingTest, PointOpsReadBackAcrossShards) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::ShardedConfig sharded;
  sharded.shards = 4;
  const auto dict =
      kv::make_sharded_engine(GetParam(), dev, io, small_config(), sharded);
  EXPECT_TRUE(dict->capabilities().sharded);
  EXPECT_EQ(dict->capabilities().shard_count, 4);
  EXPECT_EQ(dict->name(),
            "sharded-" + std::string(kv::engine_kind_name(GetParam())));

  for (uint64_t i = 0; i < 1500; ++i) {
    dict->put(kv::encode_key(i), kv::make_value(i, 40));
  }
  dict->flush();
  dict->check_invariants();
  for (uint64_t i = 0; i < 1500; i += 41) {
    EXPECT_EQ(dict->get(kv::encode_key(i)), kv::make_value(i, 40)) << i;
  }
  dict->erase(kv::encode_key(82));
  EXPECT_FALSE(dict->get(kv::encode_key(82)).has_value());
}

TEST_P(ShardedRoutingTest, ScanMergesShardsInKeyOrder) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::ShardedConfig sharded;
  sharded.shards = 4;
  const auto dict =
      kv::make_sharded_engine(GetParam(), dev, io, small_config(), sharded);

  // Insert in shuffled order; the hash router scatters keys across all
  // four shards, so an ordered scan result proves the k-way merge.
  for (const uint64_t id : kv::shuffled_ids(1200, /*seed=*/9)) {
    dict->put(kv::encode_key(id), kv::make_value(id, 30));
  }
  dict->flush();

  const auto rows = dict->range_scan(kv::encode_key(100), 300);
  ASSERT_EQ(rows.size(), 300u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].first, kv::encode_key(100 + i));
  }
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
}

INSTANTIATE_TEST_SUITE_P(Engines, ShardedRoutingTest,
                         testing::Values(kv::EngineKind::kBTree,
                                         kv::EngineKind::kBeTree,
                                         kv::EngineKind::kLsm,
                                         kv::EngineKind::kPdam),
                         [](const auto& info) {
                           std::string n(kv::engine_kind_name(info.param));
                           std::replace(n.begin(), n.end(), '-', '_');
                           return n;
                         });

TEST(ShardedEngineTest, SingleShardIsTheBareEngine) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::ShardedConfig sharded;
  sharded.shards = 1;
  const auto dict = kv::make_sharded_engine(kv::EngineKind::kBTree, dev, io,
                                            small_config(), sharded);
  // No router layer at all: this is the pre-refactor single-engine path.
  EXPECT_EQ(dict->name(), "btree");
  EXPECT_FALSE(dict->capabilities().sharded);
  EXPECT_EQ(dict->capabilities().shard_count, 1);
}

TEST(ShardedEngineTest, MetricsExportPerShardAndAggregate) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::ShardedConfig sharded;
  sharded.shards = 4;
  const auto dict = kv::make_sharded_engine(kv::EngineKind::kPdam, dev, io,
                                            small_config(), sharded);
  uint64_t want_puts = 0;
  for (uint64_t i = 0; i < 800; ++i) {
    dict->put(kv::encode_key(i), kv::make_value(i, 40));
    ++want_puts;
  }
  dict->flush();

  stats::MetricsRegistry reg;
  dict->export_metrics(reg, "s.");
  EXPECT_EQ(reg.gauge("s.shards"), 4.0);
  EXPECT_TRUE(reg.has_counter("s.io_retries"));
  EXPECT_TRUE(reg.has_counter("s.io_give_ups"));
  // The pdam adapter counts puts per shard; the shard<i>. breakdown must
  // cover every routed op exactly once.
  uint64_t shard_puts = 0;
  for (int s = 0; s < 4; ++s) {
    const std::string name = strfmt("s.shard%d.puts", s);
    ASSERT_TRUE(reg.has_counter(name)) << name;
    EXPECT_GT(reg.counter(name), 0u) << "empty shard " << s;
    shard_puts += reg.counter(name);
  }
  EXPECT_EQ(shard_puts, want_puts);
}

TEST(ShardedEngineTest, ShardsSeeDisjointRegionsOfOneDevice) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::ShardedConfig sharded;
  sharded.shards = 2;
  sharded.shard_stride_bytes = 1ULL << 30;
  kv::ShardedEngine engine(kv::EngineKind::kBTree, dev, io, small_config(),
                           sharded);
  for (uint64_t i = 0; i < 2000; ++i) {
    engine.put(kv::encode_key(i), kv::make_value(i, 50));
  }
  engine.flush();
  engine.check_invariants();  // both inner trees intact on the shared device
  for (uint64_t i = 0; i < 2000; i += 173) {
    EXPECT_EQ(engine.get(kv::encode_key(i)), kv::make_value(i, 50));
  }
}

}  // namespace
}  // namespace damkit
