#include "kv/slice.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace damkit::kv {
namespace {

TEST(SliceTest, EncodeDecodeRoundTrip) {
  for (uint64_t id : {0ULL, 1ULL, 255ULL, 1ULL << 40, ~0ULL}) {
    EXPECT_EQ(decode_key(encode_key(id)), id);
    EXPECT_EQ(decode_key(encode_key(id, 16)), id);
  }
}

TEST(SliceTest, EncodedOrderMatchesNumericOrder) {
  std::vector<uint64_t> ids{0, 1, 2, 255, 256, 1000, 1ULL << 33, ~0ULL};
  for (size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_LT(compare(encode_key(ids[i]), encode_key(ids[i + 1])), 0)
        << ids[i] << " vs " << ids[i + 1];
  }
}

TEST(SliceTest, WidthPadsOnLeft) {
  const std::string k = encode_key(1, 16);
  EXPECT_EQ(k.size(), 16u);
  for (size_t i = 0; i < 15; ++i) EXPECT_EQ(k[i], '\0');
  EXPECT_EQ(k[15], '\x01');
}

TEST(SliceTest, MakeValueDeterministicAndDistinct) {
  EXPECT_EQ(make_value(7, 64), make_value(7, 64));
  EXPECT_NE(make_value(7, 64), make_value(8, 64));
  EXPECT_EQ(make_value(7, 0), "");
  EXPECT_EQ(make_value(9, 100).size(), 100u);
}

TEST(SliceTest, MakeValueIsPrintable) {
  const std::string v = make_value(1234, 200);
  for (char c : v) {
    EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
                c == '_');
  }
}

TEST(SliceTest, CheckValue) {
  EXPECT_TRUE(check_value(5, make_value(5, 32)));
  EXPECT_FALSE(check_value(6, make_value(5, 32)));
  std::string tampered = make_value(5, 32);
  tampered[0] = tampered[0] == 'a' ? 'b' : 'a';
  EXPECT_FALSE(check_value(5, tampered));
}

TEST(SliceTest, CompareLexicographic) {
  EXPECT_EQ(compare("abc", "abc"), 0);
  EXPECT_LT(compare("abc", "abd"), 0);
  EXPECT_GT(compare("abd", "abc"), 0);
  EXPECT_LT(compare("ab", "abc"), 0);   // prefix sorts first
  EXPECT_GT(compare("abc", "ab"), 0);
  EXPECT_EQ(compare("", ""), 0);
  EXPECT_LT(compare("", "a"), 0);
}

TEST(SliceTest, CompareTreatsBytesUnsigned) {
  const std::string hi("\xff", 1);
  const std::string lo("\x01", 1);
  EXPECT_GT(compare(hi, lo), 0);
}

TEST(SliceTest, ToVariantsMatchAndReuseCapacity) {
  std::string key, value;
  encode_key_to(12345, 16, &key);
  make_value_to(12345, 100, &value);
  EXPECT_EQ(key, encode_key(12345, 16));
  EXPECT_EQ(value, make_value(12345, 100));
  // Same-size refills reuse the existing heap buffer.
  const char* key_data = key.data();
  const char* value_data = value.data();
  encode_key_to(999, 16, &key);
  make_value_to(999, 100, &value);
  EXPECT_EQ(key.data(), key_data);
  EXPECT_EQ(value.data(), value_data);
  EXPECT_EQ(key, encode_key(999, 16));
  EXPECT_EQ(value, make_value(999, 100));
}

}  // namespace
}  // namespace damkit::kv
