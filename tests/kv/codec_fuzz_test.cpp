// Randomized round-trip fuzzing of the codec: a random typed write script
// must read back exactly, for many seeds (parameterized sweep).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kv/codec.h"
#include "kv/slice.h"
#include "util/rng.h"

namespace damkit::kv {
namespace {

enum class Field : uint8_t { kU8, kU16, kU32, kU64, kBytes, kLpBytes };

class CodecFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzzTest, RandomScriptRoundTrips) {
  Rng rng(GetParam());
  const int fields = 50 + static_cast<int>(rng.uniform(200));

  std::vector<Field> script;
  std::vector<uint64_t> ints;
  std::vector<std::string> blobs;
  std::vector<uint8_t> buf;
  Writer w(buf);

  for (int i = 0; i < fields; ++i) {
    const auto f = static_cast<Field>(rng.uniform(6));
    script.push_back(f);
    switch (f) {
      case Field::kU8: {
        const uint64_t v = rng.uniform(256);
        ints.push_back(v);
        w.put_u8(static_cast<uint8_t>(v));
        break;
      }
      case Field::kU16: {
        const uint64_t v = rng.uniform(1 << 16);
        ints.push_back(v);
        w.put_u16(static_cast<uint16_t>(v));
        break;
      }
      case Field::kU32: {
        const uint64_t v = rng.next() & 0xffffffffu;
        ints.push_back(v);
        w.put_u32(static_cast<uint32_t>(v));
        break;
      }
      case Field::kU64: {
        const uint64_t v = rng.next();
        ints.push_back(v);
        w.put_u64(v);
        break;
      }
      case Field::kBytes:
      case Field::kLpBytes: {
        std::string blob = make_value(rng.next(), rng.uniform(300));
        // Include binary content, not just printable bytes.
        if (!blob.empty() && rng.uniform(2) == 0) {
          blob[blob.size() / 2] = '\0';
        }
        blobs.push_back(blob);
        if (f == Field::kBytes) {
          w.put_bytes(blob);
        } else {
          w.put_lp_bytes(blob);
        }
        break;
      }
    }
  }

  Reader r(buf);
  size_t int_idx = 0, blob_idx = 0;
  for (const Field f : script) {
    switch (f) {
      case Field::kU8:
        EXPECT_EQ(r.get_u8(), ints[int_idx++]);
        break;
      case Field::kU16:
        EXPECT_EQ(r.get_u16(), ints[int_idx++]);
        break;
      case Field::kU32:
        EXPECT_EQ(r.get_u32(), ints[int_idx++]);
        break;
      case Field::kU64:
        EXPECT_EQ(r.get_u64(), ints[int_idx++]);
        break;
      case Field::kBytes: {
        const std::string& expect = blobs[blob_idx++];
        EXPECT_EQ(r.get_bytes(expect.size()), expect);
        break;
      }
      case Field::kLpBytes:
        EXPECT_EQ(r.get_lp_bytes(), blobs[blob_idx++]);
        break;
    }
  }
  EXPECT_EQ(r.remaining(), 0u);
}

// A record batch in the SSTable entry framing (tombstone flag, u16 key
// length, u32 value length, then the bytes): random batches must read
// back field-for-field, including empty keys/values and binary content.
TEST_P(CodecFuzzTest, RandomRecordBatchesRoundTrip) {
  Rng rng(GetParam() * 7919 + 1);
  const int batches = 20;
  for (int b = 0; b < batches; ++b) {
    const size_t records = 1 + rng.uniform(64);
    struct Record {
      bool tombstone;
      std::string key, value;
    };
    std::vector<Record> expect;
    std::vector<uint8_t> buf;
    Writer w(buf);
    for (size_t i = 0; i < records; ++i) {
      Record rec;
      rec.tombstone = rng.uniform(8) == 0;
      rec.key = make_value(rng.next(), rng.uniform(200));
      rec.value =
          rec.tombstone ? std::string() : make_value(rng.next(), rng.uniform(500));
      if (!rec.key.empty() && rng.uniform(2) == 0) rec.key[0] = '\0';
      w.put_u8(rec.tombstone ? 1 : 0);
      w.put_u16(static_cast<uint16_t>(rec.key.size()));
      w.put_u32(static_cast<uint32_t>(rec.value.size()));
      w.put_bytes(rec.key);
      w.put_bytes(rec.value);
      expect.push_back(std::move(rec));
    }
    Reader r(buf);
    for (const Record& rec : expect) {
      EXPECT_EQ(r.get_u8() != 0, rec.tombstone);
      const uint16_t klen = r.get_u16();
      const uint32_t vlen = r.get_u32();
      ASSERT_EQ(klen, rec.key.size());
      ASSERT_EQ(vlen, rec.value.size());
      EXPECT_EQ(r.get_bytes(klen), rec.key);
      EXPECT_EQ(r.get_bytes(vlen), rec.value);
    }
    EXPECT_EQ(r.remaining(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest,
                         testing::Values(1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 6ULL,
                                         7ULL, 8ULL),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace damkit::kv
