#include "kv/codec.h"

#include <gtest/gtest.h>

namespace damkit::kv {
namespace {

TEST(CodecTest, PrimitivesRoundTrip) {
  std::vector<uint8_t> buf;
  Writer w(buf);
  w.put_u8(0xab);
  w.put_u16(0x1234);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_bytes("raw");
  w.put_lp_bytes("length-prefixed");

  Reader r(buf);
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u16(), 0x1234);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.get_bytes(3), "raw");
  EXPECT_EQ(r.get_lp_bytes(), "length-prefixed");
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CodecTest, WriterTracksSize) {
  std::vector<uint8_t> buf;
  Writer w(buf);
  EXPECT_EQ(w.size(), 0u);
  w.put_u32(1);
  EXPECT_EQ(w.size(), 4u);
  w.put_lp_bytes("abc");
  EXPECT_EQ(w.size(), 4u + 4u + 3u);
}

TEST(CodecTest, EmptyPayloads) {
  std::vector<uint8_t> buf;
  Writer w(buf);
  w.put_lp_bytes("");
  Reader r(buf);
  EXPECT_EQ(r.get_lp_bytes(), "");
}

TEST(CodecTest, ReaderPositionAdvances) {
  std::vector<uint8_t> buf;
  Writer w(buf);
  w.put_u64(1);
  w.put_u64(2);
  Reader r(buf);
  EXPECT_EQ(r.position(), 0u);
  r.get_u64();
  EXPECT_EQ(r.position(), 8u);
  EXPECT_EQ(r.remaining(), 8u);
}

TEST(CodecTest, LengthPrefixOfExactlyRemainingBytesReads) {
  std::vector<uint8_t> buf;
  Writer w(buf);
  const std::string payload(1000, 'x');
  w.put_lp_bytes(payload);
  Reader r(buf);
  EXPECT_EQ(r.get_lp_bytes(), payload);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(CodecDeathTest, ShortReadAborts) {
  std::vector<uint8_t> buf;
  Writer w(buf);
  w.put_u16(7);
  Reader r(buf);
  r.get_u16();
  EXPECT_DEATH(r.get_u8(), "short read");
}

TEST(CodecDeathTest, TruncatedLengthPrefixAborts) {
  std::vector<uint8_t> buf;
  Writer w(buf);
  w.put_u32(100);  // claims 100 bytes follow; none do
  Reader r(buf);
  EXPECT_DEATH(r.get_lp_bytes(), "short read");
}

TEST(CodecDeathTest, TruncationMidFixedWidthFieldAborts) {
  std::vector<uint8_t> buf;
  Writer w(buf);
  w.put_u64(0x1122334455667788ULL);
  // Every strict prefix of the u64 must refuse a u64 read.
  for (size_t cut = 0; cut < 8; ++cut) {
    Reader r(std::span(buf.data(), cut));
    EXPECT_DEATH(r.get_u64(), "short read") << cut;
  }
}

TEST(CodecDeathTest, MaxLengthPrefixDoesNotOverflowBoundsCheck) {
  // A corrupt image claiming UINT32_MAX payload bytes must hit the bounds
  // CHECK, not wrap pos + n and hand out a bogus 4 GiB string.
  std::vector<uint8_t> buf;
  Writer w(buf);
  w.put_u32(UINT32_MAX);
  w.put_bytes("tiny");
  Reader r(buf);
  EXPECT_DEATH(r.get_lp_bytes(), "short read");
}

TEST(CodecDeathTest, LargeGetBytesPastEndAborts) {
  const std::vector<uint8_t> buf(16, 0);
  Reader r(buf);
  EXPECT_DEATH(r.get_bytes(buf.size() + 1), "short read");
}

}  // namespace
}  // namespace damkit::kv
