#include "betree/betree_node.h"

#include <gtest/gtest.h>

#include "kv/slice.h"

namespace damkit::betree {
namespace {

Message put_msg(std::string k, std::string v) {
  return Message{MessageKind::kPut, std::move(k), std::move(v)};
}

TEST(BeTreeNodeTest, LeafApplyPutInsertOverwrite) {
  auto leaf = BeTreeNode::make_leaf();
  leaf->leaf_apply(put_msg("b", "1"));
  leaf->leaf_apply(put_msg("a", "2"));
  leaf->leaf_apply(put_msg("b", "3"));
  ASSERT_EQ(leaf->entry_count(), 2u);
  EXPECT_EQ(leaf->key(0), "a");
  EXPECT_EQ(leaf->value(1), "3");
  EXPECT_EQ(leaf->byte_size(), leaf->recomputed_byte_size());
}

TEST(BeTreeNodeTest, LeafApplyTombstoneRemoves) {
  auto leaf = BeTreeNode::make_leaf();
  leaf->leaf_apply(put_msg("a", "1"));
  leaf->leaf_apply(Message{MessageKind::kTombstone, "a", ""});
  EXPECT_EQ(leaf->entry_count(), 0u);
  // Tombstone for an absent key is a no-op.
  leaf->leaf_apply(Message{MessageKind::kTombstone, "zzz", ""});
  EXPECT_EQ(leaf->entry_count(), 0u);
  EXPECT_EQ(leaf->byte_size(), leaf->recomputed_byte_size());
}

TEST(BeTreeNodeTest, LeafApplyUpsertCreatesAndAdds) {
  auto leaf = BeTreeNode::make_leaf();
  leaf->leaf_apply(Message{MessageKind::kUpsert, "c", encode_delta(4)});
  leaf->leaf_apply(Message{MessageKind::kUpsert, "c", encode_delta(6)});
  ASSERT_EQ(leaf->entry_count(), 1u);
  EXPECT_EQ(decode_counter(leaf->value(0)), 10u);
}

TEST(BeTreeNodeTest, BufferAddTakeAccounting) {
  auto node = BeTreeNode::make_internal();
  node->internal_init(1);
  node->internal_insert(0, "m", 2);
  const uint64_t base = node->byte_size();
  node->buffer_add(0, put_msg("a", "xyz"));
  node->buffer_add(0, put_msg("b", "q"));
  node->buffer_add(1, put_msg("z", "w"));
  EXPECT_EQ(node->buffer_count(0), 2u);
  EXPECT_GT(node->buffer_bytes(0), node->buffer_bytes(1));
  EXPECT_EQ(node->total_buffer_bytes(),
            node->buffer_bytes(0) + node->buffer_bytes(1));
  EXPECT_EQ(node->byte_size(), base + node->total_buffer_bytes());

  const auto msgs = node->buffer_take(0);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].key, "a");  // arrival order preserved
  EXPECT_EQ(msgs[1].key, "b");
  EXPECT_EQ(node->buffer_bytes(0), 0u);
  EXPECT_EQ(node->byte_size(), node->recomputed_byte_size());
}

TEST(BeTreeNodeTest, FullestChild) {
  auto node = BeTreeNode::make_internal();
  node->internal_init(1);
  node->internal_insert(0, "g", 2);
  node->internal_insert(1, "p", 3);
  node->buffer_add(1, put_msg("h", std::string(100, 'x')));
  node->buffer_add(2, put_msg("q", "small"));
  EXPECT_EQ(node->fullest_child(), 1u);
}

TEST(BeTreeNodeTest, CollectForKeyInOrder) {
  auto node = BeTreeNode::make_internal();
  node->internal_init(1);
  node->buffer_add(0, put_msg("k", "first"));
  node->buffer_add(0, put_msg("other", "x"));
  node->buffer_add(0, Message{MessageKind::kTombstone, "k", ""});
  std::vector<Message> out;
  node->collect_for_key(0, "k", &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].payload, "first");
  EXPECT_EQ(out[1].kind, MessageKind::kTombstone);
}

TEST(BeTreeNodeTest, InternalRemoveChildFoldsBuffer) {
  auto node = BeTreeNode::make_internal();
  node->internal_init(1);
  node->internal_insert(0, "m", 2);
  node->buffer_add(0, put_msg("a", "1"));
  node->buffer_add(1, put_msg("x", "2"));
  const uint64_t total = node->total_buffer_bytes();
  node->internal_remove_child(0);
  EXPECT_EQ(node->child_count(), 1u);
  EXPECT_EQ(node->buffer_count(0), 2u);  // both messages retained
  EXPECT_EQ(node->total_buffer_bytes(), total);
  EXPECT_EQ(node->byte_size(), node->recomputed_byte_size());
}

TEST(BeTreeNodeTest, SerializeDeserializeInternalWithBuffers) {
  auto node = BeTreeNode::make_internal();
  node->internal_init(10);
  node->internal_insert(0, "mid", 20);
  node->buffer_add(0, put_msg("a", "v1"));
  node->buffer_add(1, Message{MessageKind::kUpsert, "x", encode_delta(3)});
  node->buffer_add(1, Message{MessageKind::kTombstone, "y", ""});
  std::vector<uint8_t> image;
  node->serialize(image);
  EXPECT_EQ(image.size(), node->byte_size());
  auto back = BeTreeNode::deserialize(image);
  ASSERT_FALSE(back->is_leaf());
  EXPECT_EQ(back->child_count(), 2u);
  EXPECT_EQ(back->pivot(0), "mid");
  EXPECT_EQ(back->buffer_count(0), 1u);
  EXPECT_EQ(back->buffer_count(1), 2u);
  EXPECT_EQ(back->buffer(1)[0].kind, MessageKind::kUpsert);
  EXPECT_EQ(back->buffer(1)[1].kind, MessageKind::kTombstone);
  EXPECT_EQ(back->byte_size(), node->byte_size());
  EXPECT_EQ(back->byte_size(), back->recomputed_byte_size());
}

TEST(BeTreeNodeTest, SerializeDeserializeLeaf) {
  auto leaf = BeTreeNode::make_leaf();
  leaf->leaf_apply(put_msg("k1", "v1"));
  leaf->leaf_apply(put_msg("k2", std::string(500, 'z')));
  std::vector<uint8_t> image;
  leaf->serialize(image);
  auto back = BeTreeNode::deserialize(image);
  ASSERT_TRUE(back->is_leaf());
  EXPECT_EQ(back->entry_count(), 2u);
  EXPECT_EQ(back->value(1), std::string(500, 'z'));
  EXPECT_EQ(back->byte_size(), leaf->byte_size());
}

TEST(BeTreeNodeTest, LeafSplitBalanced) {
  auto leaf = BeTreeNode::make_leaf();
  for (uint64_t i = 0; i < 100; ++i) {
    leaf->leaf_apply(put_msg(kv::encode_key(i), "some-value"));
  }
  const uint64_t total = leaf->byte_size();
  auto sr = leaf->split();
  EXPECT_EQ(sr.separator, sr.right->key(0));
  EXPECT_NEAR(static_cast<double>(leaf->byte_size()),
              static_cast<double>(sr.right->byte_size()), total * 0.2);
  EXPECT_EQ(leaf->byte_size(), leaf->recomputed_byte_size());
  EXPECT_EQ(sr.right->byte_size(), sr.right->recomputed_byte_size());
}

TEST(BeTreeNodeTest, InternalSplitPartitionsBuffersByChild) {
  auto node = BeTreeNode::make_internal();
  node->internal_init(0);
  for (uint64_t i = 1; i <= 10; ++i) {
    node->internal_insert(i - 1, kv::encode_key(i * 100), i);
  }
  // Load buffers: child i gets i messages.
  for (size_t c = 0; c < node->child_count(); ++c) {
    for (size_t j = 0; j <= c; ++j) {
      node->buffer_add(
          c, put_msg(kv::encode_key(c * 100 + j + 1), "payload"));
    }
  }
  const uint64_t total_msgs_before = [&] {
    uint64_t n = 0;
    for (size_t c = 0; c < node->child_count(); ++c) n += node->buffer_count(c);
    return n;
  }();

  auto sr = node->split();
  uint64_t total_after = 0;
  for (size_t c = 0; c < node->child_count(); ++c) {
    total_after += node->buffer_count(c);
    for (const MessageView m : node->buffer(c)) {
      EXPECT_LT(kv::compare(m.key, sr.separator), 0);
    }
  }
  for (size_t c = 0; c < sr.right->child_count(); ++c) {
    total_after += sr.right->buffer_count(c);
    for (const MessageView m : sr.right->buffer(c)) {
      EXPECT_GE(kv::compare(m.key, sr.separator), 0);
    }
  }
  EXPECT_EQ(total_after, total_msgs_before);
  EXPECT_EQ(node->byte_size(), node->recomputed_byte_size());
  EXPECT_EQ(sr.right->byte_size(), sr.right->recomputed_byte_size());
  EXPECT_EQ(node->child_count() + sr.right->child_count(), 11u);
}

TEST(BeTreeNodeTest, LeafMergeFromRight) {
  auto left = BeTreeNode::make_leaf();
  auto right = BeTreeNode::make_leaf();
  left->leaf_apply(put_msg("a", "1"));
  right->leaf_apply(put_msg("m", "2"));
  left->leaf_merge_from_right(*right);
  EXPECT_EQ(left->entry_count(), 2u);
  EXPECT_EQ(right->entry_count(), 0u);
  EXPECT_EQ(left->byte_size(), left->recomputed_byte_size());
}

}  // namespace
}  // namespace damkit::betree
