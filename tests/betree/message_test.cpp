#include "betree/message.h"

#include <gtest/gtest.h>

namespace damkit::betree {
namespace {

TEST(MessageTest, BytesAccounting) {
  Message m{MessageKind::kPut, "key", "value"};
  EXPECT_EQ(m.bytes(), 1u + 2 + 4 + 3 + 5);
  EXPECT_EQ(Message::bytes_for(0, 0), 7u);
}

TEST(MessageTest, CounterRoundTrip) {
  for (uint64_t v : {0ULL, 1ULL, 123456789ULL, ~0ULL}) {
    EXPECT_EQ(decode_counter(encode_counter(v)), v);
  }
  EXPECT_EQ(encode_counter(5).size(), 8u);
}

TEST(MessageTest, NonCounterValueDecodesAsZero) {
  EXPECT_EQ(decode_counter("short"), 0u);
  EXPECT_EQ(decode_counter("definitely longer than 8"), 0u);
}

TEST(MessageTest, ApplyPutReplaces) {
  const Message m{MessageKind::kPut, "k", "new"};
  EXPECT_EQ(apply_message(std::nullopt, m), "new");
  EXPECT_EQ(apply_message(std::string("old"), m), "new");
}

TEST(MessageTest, ApplyTombstoneDeletes) {
  const Message m{MessageKind::kTombstone, "k", ""};
  EXPECT_EQ(apply_message(std::string("old"), m), std::nullopt);
  EXPECT_EQ(apply_message(std::nullopt, m), std::nullopt);
}

TEST(MessageTest, ApplyUpsertAddsFromZero) {
  const Message m{MessageKind::kUpsert, "k", encode_delta(5)};
  const auto out = apply_message(std::nullopt, m);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(decode_counter(*out), 5u);
}

TEST(MessageTest, ApplyUpsertAccumulates) {
  const Message m1{MessageKind::kUpsert, "k", encode_delta(5)};
  const Message m2{MessageKind::kUpsert, "k", encode_delta(7)};
  auto state = apply_message(std::nullopt, m1);
  state = apply_message(std::move(state), m2);
  EXPECT_EQ(decode_counter(*state), 12u);
}

TEST(MessageTest, ApplyUpsertNegativeDelta) {
  const Message up{MessageKind::kUpsert, "k", encode_delta(10)};
  const Message down{MessageKind::kUpsert, "k", encode_delta(-4)};
  auto state = apply_message(std::nullopt, up);
  state = apply_message(std::move(state), down);
  EXPECT_EQ(decode_counter(*state), 6u);
}

TEST(MessageTest, UpsertAfterTombstoneStartsFresh) {
  const Message del{MessageKind::kTombstone, "k", ""};
  const Message up{MessageKind::kUpsert, "k", encode_delta(3)};
  auto state = apply_message(std::string("junk"), del);
  state = apply_message(std::move(state), up);
  ASSERT_TRUE(state.has_value());
  EXPECT_EQ(decode_counter(*state), 3u);
}

TEST(MessageTest, PutAfterUpsertWins) {
  const Message up{MessageKind::kUpsert, "k", encode_delta(3)};
  const Message put{MessageKind::kPut, "k", "explicit"};
  auto state = apply_message(std::nullopt, up);
  state = apply_message(std::move(state), put);
  EXPECT_EQ(*state, "explicit");
}

}  // namespace
}  // namespace damkit::betree
