// Node-level fuzz: random mutation scripts against both tree node types,
// checking serialization round-trips and byte-size accounting after every
// burst. Catches drift the tree-level tests would only see as a late
// CHECK failure.
#include <gtest/gtest.h>

#include "betree/betree_node.h"
#include "btree/btree_node.h"
#include "kv/slice.h"
#include "util/rng.h"

namespace damkit {
namespace {

class NodeFuzzTest : public testing::TestWithParam<uint64_t> {};

TEST_P(NodeFuzzTest, BeTreeLeafScript) {
  Rng rng(GetParam());
  auto leaf = betree::BeTreeNode::make_leaf();
  for (int op = 0; op < 500; ++op) {
    const uint64_t id = rng.uniform(80);
    const double dice = rng.uniform_double();
    betree::Message m;
    m.key = kv::encode_key(id);
    if (dice < 0.5) {
      m.kind = betree::MessageKind::kPut;
      m.payload = kv::make_value(rng.next(), rng.uniform(100));
    } else if (dice < 0.75) {
      m.kind = betree::MessageKind::kTombstone;
    } else {
      m.kind = betree::MessageKind::kUpsert;
      m.payload = betree::encode_delta(static_cast<int64_t>(rng.uniform(9)));
    }
    leaf->leaf_apply(m);
    if (op % 50 == 49) {
      ASSERT_EQ(leaf->byte_size(), leaf->recomputed_byte_size()) << op;
      std::vector<uint8_t> image;
      leaf->serialize(image);
      auto back = betree::BeTreeNode::deserialize(image);
      ASSERT_EQ(back->entry_count(), leaf->entry_count()) << op;
      for (size_t i = 0; i < back->entry_count(); ++i) {
        EXPECT_EQ(back->key(i), leaf->key(i));
        EXPECT_EQ(back->value(i), leaf->value(i));
      }
    }
  }
}

TEST_P(NodeFuzzTest, BeTreeInternalBufferScript) {
  Rng rng(GetParam() * 3 + 1);
  auto node = betree::BeTreeNode::make_internal();
  node->internal_init(100);
  for (uint64_t c = 1; c <= 6; ++c) {
    node->internal_insert(c - 1, kv::encode_key(c * 1000), 100 + c);
  }
  for (int op = 0; op < 400; ++op) {
    const double dice = rng.uniform_double();
    if (dice < 0.7) {
      betree::Message m{betree::MessageKind::kPut,
                        kv::encode_key(rng.uniform(7000)),
                        kv::make_value(rng.next(), rng.uniform(60))};
      node->buffer_add(node->child_index(m.key), std::move(m));
    } else if (dice < 0.85 && node->total_buffer_bytes() > 0) {
      (void)node->buffer_take(node->fullest_child());
    } else if (node->child_count() > 2) {
      node->internal_remove_child(rng.uniform(node->pivot_count()));
    }
    ASSERT_EQ(node->byte_size(), node->recomputed_byte_size()) << op;
  }
  std::vector<uint8_t> image;
  node->serialize(image);
  auto back = betree::BeTreeNode::deserialize(image);
  EXPECT_EQ(back->byte_size(), node->byte_size());
  EXPECT_EQ(back->child_count(), node->child_count());
  EXPECT_EQ(back->total_buffer_bytes(), node->total_buffer_bytes());
}

TEST_P(NodeFuzzTest, BTreeLeafScriptWithSplits) {
  Rng rng(GetParam() * 5 + 2);
  auto leaf = btree::BTreeNode::make_leaf();
  int splits = 0;
  for (int op = 0; op < 600; ++op) {
    const uint64_t id = rng.uniform(200);
    if (rng.uniform_double() < 0.7) {
      leaf->leaf_put(kv::encode_key(id), kv::make_value(rng.next(), 40));
    } else {
      leaf->leaf_erase(kv::encode_key(id));
    }
    if (leaf->byte_size() > 4096 && leaf->entry_count() >= 2) {
      auto sr = leaf->split();
      ++splits;
      // Keep churning the left half; the right must be internally valid.
      ASSERT_EQ(sr.right->byte_size(), sr.right->recomputed_byte_size());
      ASSERT_EQ(leaf->byte_size(), leaf->recomputed_byte_size());
      ASSERT_LT(kv::compare(leaf->key(leaf->entry_count() - 1),
                            sr.right->key(0)),
                0);
    }
  }
  EXPECT_GT(splits, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NodeFuzzTest,
                         testing::Values(11ULL, 22ULL, 33ULL, 44ULL),
                         [](const testing::TestParamInfo<uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace damkit
