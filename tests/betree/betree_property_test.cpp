// Randomized differential testing of the Bε-tree against std::map over a
// grid of node sizes, fanouts, cache pressures and flush policies —
// including upserts, which std::map models as read-modify-write.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "betree/betree.h"
#include "kv/slice.h"
#include "sim/hdd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::betree {
namespace {

struct PropertyParam {
  uint64_t node_bytes;
  size_t fanout;
  uint64_t cache_nodes;
  size_t value_bytes;
  uint64_t key_space;
  FlushPolicy policy;
  uint64_t seed;
};

class BeTreePropertyTest : public testing::TestWithParam<PropertyParam> {};

TEST_P(BeTreePropertyTest, AgreesWithStdMap) {
  const PropertyParam p = GetParam();
  sim::HddConfig cfg;
  cfg.capacity_bytes = 4ULL * kGiB;
  sim::HddDevice dev(cfg, p.seed);
  sim::IoContext io(dev);
  BeTreeConfig tc;
  tc.node_bytes = p.node_bytes;
  tc.target_fanout = p.fanout;
  tc.cache_bytes = p.node_bytes * p.cache_nodes;
  tc.flush_policy = p.policy;
  BeTree tree(dev, io, tc);

  std::map<std::string, std::string> ref;
  Rng rng(p.seed * 31 + 1);
  constexpr int kOps = 4000;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t id = rng.uniform(p.key_space);
    const std::string key = kv::encode_key(id);
    const double dice = rng.uniform_double();
    if (dice < 0.40) {
      const std::string value = kv::make_value(rng.next(), p.value_bytes);
      tree.put(key, value);
      ref[key] = value;
    } else if (dice < 0.55) {
      const int64_t delta = static_cast<int64_t>(rng.uniform(100));
      tree.upsert(key, delta);
      const auto it = ref.find(key);
      const uint64_t base =
          (it == ref.end()) ? 0 : decode_counter(it->second);
      ref[key] = encode_counter(base + static_cast<uint64_t>(delta));
    } else if (dice < 0.75) {
      const auto got = tree.get(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(got, std::nullopt) << "op " << i;
      } else {
        EXPECT_EQ(got, it->second) << "op " << i;
      }
    } else if (dice < 0.9) {
      tree.erase(key);
      ref.erase(key);
    } else {
      const size_t limit = 1 + static_cast<size_t>(rng.uniform(15));
      const auto got = tree.scan(key, limit);
      auto it = ref.lower_bound(key);
      size_t n = 0;
      for (; it != ref.end() && n < limit; ++it, ++n) {
        ASSERT_LT(n, got.size()) << "op " << i;
        EXPECT_EQ(got[n].first, it->first) << "op " << i;
        EXPECT_EQ(got[n].second, it->second) << "op " << i;
      }
      EXPECT_EQ(got.size(), n) << "op " << i;
    }
  }
  tree.check_invariants();

  // Post-flush full sweep.
  tree.flush_cache();
  for (const auto& [k, v] : ref) EXPECT_EQ(tree.get(k), v);
  // Full scan agrees with the reference map exactly.
  const auto all = tree.scan("", ref.size() + 100);
  ASSERT_EQ(all.size(), ref.size());
  auto it = ref.begin();
  for (size_t i = 0; i < all.size(); ++i, ++it) {
    EXPECT_EQ(all[i].first, it->first);
    EXPECT_EQ(all[i].second, it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BeTreePropertyTest,
    testing::Values(
        // Small nodes, small fanout: deep tree, constant flushing.
        PropertyParam{2048, 4, 64, 20, 400, FlushPolicy::kFullestChild, 1},
        // Heavy cache pressure.
        PropertyParam{4096, 6, 6, 30, 600, FlushPolicy::kFullestChild, 2},
        // Round-robin flushing ablation.
        PropertyParam{4096, 6, 32, 30, 600, FlushPolicy::kRoundRobin, 3},
        // Narrow key space: overwrite/delete churn, hot buffers.
        PropertyParam{4096, 8, 32, 50, 30, FlushPolicy::kFullestChild, 4},
        // Bigger nodes, ε=1/2-ish fanout.
        PropertyParam{64 * 1024, 0, 8, 100, 3000, FlushPolicy::kFullestChild,
                      5},
        // Large values relative to node size.
        PropertyParam{4096, 4, 32, 600, 150, FlushPolicy::kFullestChild, 6}),
    [](const testing::TestParamInfo<PropertyParam>& info) {
      return "node" + std::to_string(info.param.node_bytes) + "_f" +
             std::to_string(info.param.fanout) + "_cache" +
             std::to_string(info.param.cache_nodes) + "_val" +
             std::to_string(info.param.value_bytes) + "_keys" +
             std::to_string(info.param.key_space) + "_seed" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace damkit::betree
