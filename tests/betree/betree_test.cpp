#include "betree/betree.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>

#include "kv/slice.h"
#include "sim/hdd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::betree {
namespace {

class BeTreeTest : public testing::Test {
 protected:
  BeTreeTest() { reset(); }

  void reset(uint64_t node_bytes = 8192, size_t fanout = 8,
             uint64_t cache_bytes = 1 * kMiB,
             FlushPolicy policy = FlushPolicy::kFullestChild) {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 4ULL * kGiB;
    dev_ = std::make_unique<sim::HddDevice>(cfg, 1);
    io_ = std::make_unique<sim::IoContext>(*dev_);
    BeTreeConfig tc;
    tc.node_bytes = node_bytes;
    tc.target_fanout = fanout;
    tc.cache_bytes = cache_bytes;
    tc.flush_policy = policy;
    tree_ = std::make_unique<BeTree>(*dev_, *io_, tc);
  }

  std::unique_ptr<sim::HddDevice> dev_;
  std::unique_ptr<sim::IoContext> io_;
  std::unique_ptr<BeTree> tree_;
};

TEST_F(BeTreeTest, EmptyTree) {
  EXPECT_EQ(tree_->get("k"), std::nullopt);
  EXPECT_TRUE(tree_->scan("", 5).empty());
}

TEST_F(BeTreeTest, PutGetSingle) {
  tree_->put("hello", "world");
  EXPECT_EQ(tree_->get("hello"), "world");
  EXPECT_EQ(tree_->get("h"), std::nullopt);
}

TEST_F(BeTreeTest, ManyInsertsQueryThroughBuffers) {
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 20));
  }
  EXPECT_GT(tree_->height(), 1u);
  EXPECT_GT(tree_->op_stats().flushes, 0u);
  tree_->check_invariants();
  for (uint64_t i = 0; i < kN; i += 31) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 20)) << i;
  }
}

TEST_F(BeTreeTest, NewestMessageWins) {
  // Write the same key many times with filler between, so older versions
  // sink into deeper buffers while the newest stays near the root.
  for (uint64_t round = 0; round < 50; ++round) {
    tree_->put("hot-key", "v" + std::to_string(round));
    for (uint64_t i = 0; i < 100; ++i) {
      tree_->put(kv::encode_key(round * 100 + i), "filler-value");
    }
  }
  EXPECT_EQ(tree_->get("hot-key"), "v49");
}

TEST_F(BeTreeTest, TombstoneDeletes) {
  for (uint64_t i = 0; i < 1000; ++i) {
    tree_->put(kv::encode_key(i), "value");
  }
  for (uint64_t i = 0; i < 1000; i += 2) {
    tree_->erase(kv::encode_key(i));
  }
  for (uint64_t i = 0; i < 1000; ++i) {
    if (i % 2 == 0) {
      EXPECT_EQ(tree_->get(kv::encode_key(i)), std::nullopt) << i;
    } else {
      EXPECT_EQ(tree_->get(kv::encode_key(i)), "value") << i;
    }
  }
  tree_->check_invariants();
}

TEST_F(BeTreeTest, EraseOfAbsentKeyHarmless) {
  tree_->put("a", "1");
  tree_->erase("never-existed");
  EXPECT_EQ(tree_->get("a"), "1");
  EXPECT_EQ(tree_->get("never-existed"), std::nullopt);
}

TEST_F(BeTreeTest, UpsertsAccumulateWithoutReads) {
  for (int i = 0; i < 500; ++i) tree_->upsert("counter", 2);
  const auto v = tree_->get("counter");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(decode_counter(*v), 1000u);
}

TEST_F(BeTreeTest, UpsertsInterleavedWithFiller) {
  for (uint64_t i = 0; i < 300; ++i) {
    tree_->upsert(kv::encode_key(7), 1);
    tree_->put(kv::encode_key(1000 + i), "filler-filler-filler");
  }
  const auto v = tree_->get(kv::encode_key(7));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(decode_counter(*v), 300u);
  tree_->check_invariants();
}

TEST_F(BeTreeTest, ScanSeesBufferedAndLeafState) {
  // Bulk some keys to the leaves, then overlay buffered changes.
  tree_->bulk_load(1000, [](uint64_t i) {
    return std::make_pair(kv::encode_key(i * 2), std::string("base"));
  });
  tree_->put(kv::encode_key(11), "buffered-insert");   // new key
  tree_->erase(kv::encode_key(12));                    // delete leaf key
  tree_->put(kv::encode_key(14), "buffered-update");   // overwrite leaf key
  const auto out = tree_->scan(kv::encode_key(10), 4);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0].first, kv::encode_key(10));
  EXPECT_EQ(out[0].second, "base");
  EXPECT_EQ(out[1].first, kv::encode_key(11));
  EXPECT_EQ(out[1].second, "buffered-insert");
  EXPECT_EQ(out[2].first, kv::encode_key(14));
  EXPECT_EQ(out[2].second, "buffered-update");
  EXPECT_EQ(out[3].first, kv::encode_key(16));
}

TEST_F(BeTreeTest, ScanHonorsLimitAcrossLeaves) {
  for (uint64_t i = 0; i < 3000; ++i) {
    tree_->put(kv::encode_key(i), "v");
  }
  const auto out = tree_->scan(kv::encode_key(100), 500);
  ASSERT_EQ(out.size(), 500u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].first, kv::encode_key(100 + i));
  }
}

TEST_F(BeTreeTest, BulkLoadThenPointQueries) {
  constexpr uint64_t kN = 20000;
  tree_->bulk_load(kN, [](uint64_t i) {
    return std::make_pair(kv::encode_key(i), kv::make_value(i, 16));
  });
  tree_->check_invariants();
  Rng rng(9);
  for (int i = 0; i < 300; ++i) {
    const uint64_t id = rng.uniform(kN);
    EXPECT_EQ(tree_->get(kv::encode_key(id)), kv::make_value(id, 16));
  }
}

TEST_F(BeTreeTest, PersistsAcrossEvictions) {
  reset(8192, 8, 8 * 8192);  // tiny cache
  for (uint64_t i = 0; i < 3000; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 30));
  }
  tree_->flush_cache();
  EXPECT_GT(tree_->cache_stats().evictions, 0u);
  for (uint64_t i = 0; i < 3000; i += 41) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 30));
  }
  tree_->check_invariants();
}

TEST_F(BeTreeTest, RoundRobinFlushPolicyWorks) {
  reset(8192, 8, 1 * kMiB, FlushPolicy::kRoundRobin);
  for (uint64_t i = 0; i < 4000; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 25));
  }
  tree_->check_invariants();
  for (uint64_t i = 0; i < 4000; i += 61) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 25));
  }
}

TEST_F(BeTreeTest, DefaultFanoutFollowsSqrtB) {
  sim::HddConfig cfg;
  cfg.capacity_bytes = 1ULL * kGiB;
  sim::HddDevice dev(cfg, 1);
  sim::IoContext io(dev);
  BeTreeConfig tc;
  tc.node_bytes = 1 * kMiB;
  tc.target_fanout = 0;  // derive
  tc.pivot_estimate_bytes = 16;
  BeTree t(dev, io, tc);
  const double expected = std::sqrt(1.0 * kMiB / 16);
  EXPECT_NEAR(static_cast<double>(t.target_fanout()), expected, 2.0);
}

TEST_F(BeTreeTest, InsertsCheaperThanBTreeStyleUpdateIo) {
  // The defining Bε-tree property: amortized device IO per insert is far
  // below one whole-node write. 5000 inserts with a cold cache.
  reset(16 * kKiB, 16, 512 * kKiB);
  constexpr uint64_t kN = 20000;
  tree_->bulk_load(kN, [](uint64_t i) {
    return std::make_pair(kv::encode_key(i * 2), kv::make_value(i, 30));
  });
  dev_->clear_stats();
  Rng rng(3);
  constexpr int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t id = rng.uniform(2 * kN);
    tree_->put(kv::encode_key(id), kv::make_value(id, 30));
  }
  tree_->flush_cache();
  const double node_writes_per_op =
      static_cast<double>(dev_->stats().bytes_written) / (16.0 * kKiB) / kOps;
  // A B-tree would write ~1 node per op at this cache pressure; the
  // Bε-tree amortizes flushes across F messages.
  EXPECT_LT(node_writes_per_op, 0.6);
}

TEST_F(BeTreeTest, DeepTreeQueriesSeeAllBufferLevels) {
  // Force height >= 3 so queries must merge messages from buffers at
  // multiple internal levels.
  reset(4096, 4, 1 * kMiB);
  for (uint64_t i = 0; i < 8000; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 20));
  }
  ASSERT_GE(tree_->height(), 3u);
  // Overlay newer versions that stay buffered at various depths.
  for (uint64_t i = 0; i < 8000; i += 5) {
    tree_->put(kv::encode_key(i), "overlay");
  }
  tree_->check_invariants();
  for (uint64_t i = 0; i < 8000; i += 97) {
    if (i % 5 == 0) {
      EXPECT_EQ(tree_->get(kv::encode_key(i)), "overlay") << i;
    } else {
      EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 20)) << i;
    }
  }
  const auto out = tree_->scan(kv::encode_key(100), 10);
  ASSERT_EQ(out.size(), 10u);
  EXPECT_EQ(out[0].second, "overlay");           // key 100 (mult of 5)
  EXPECT_EQ(out[1].second, kv::make_value(101, 20));
}

TEST_F(BeTreeTest, StatsCount) {
  tree_->put("a", "1");
  tree_->get("a");
  tree_->erase("a");
  tree_->upsert("c", 1);
  tree_->scan("", 3);
  const BeTreeOpStats& s = tree_->op_stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 1u);
  EXPECT_EQ(s.erases, 1u);
  EXPECT_EQ(s.upserts, 1u);
  EXPECT_EQ(s.scans, 1u);
}

TEST_F(BeTreeTest, HeavyDeleteShrinksViaLeafMerges) {
  for (uint64_t i = 0; i < 5000; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 40));
  }
  for (uint64_t i = 0; i < 4900; ++i) {
    tree_->erase(kv::encode_key(i));
  }
  // Force tombstones down so merges can happen.
  for (uint64_t i = 0; i < 2000; ++i) {
    tree_->put(kv::encode_key(100000 + i), "fresh");
  }
  tree_->check_invariants();
  EXPECT_GT(tree_->op_stats().leaf_merges, 0u);
  for (uint64_t i = 4900; i < 5000; ++i) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 40));
  }
}

}  // namespace
}  // namespace damkit::betree
