#include "stats/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "stats/metrics.h"

namespace damkit::stats {
namespace {

TEST(JsonWriter, EscapesStrings) {
  std::string out;
  json_append_string(out, "a\"b\\c\n\t");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\"");
}

TEST(JsonWriter, DoublesRoundTripShortest) {
  std::string out;
  json_append_double(out, 0.1);
  EXPECT_EQ(out, "0.1");
  out.clear();
  json_append_double(out, 1e-9);
  EXPECT_EQ(std::stod(out), 1e-9);
}

TEST(JsonWriter, NonFiniteSerializesAsNull) {
  // Regression: NaN/Inf used to be printed verbatim ("nan", "inf"), which
  // is not JSON and broke every downstream parser of the snapshot.
  std::string out;
  json_append_double(out, std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(out, "null");
  out.clear();
  json_append_double(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
  out.clear();
  json_append_double(out, -std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
}

TEST(JsonParser, ParsesScalarsAndContainers) {
  const auto v = parse_json(
      R"({"a": 1, "b": -2.5, "c": [true, false, null], "d": "x"})");
  ASSERT_TRUE(v.ok());
  const JsonValue* a = v->find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->is_integer);
  EXPECT_EQ(a->uint_val, 1u);
  const JsonValue* b = v->find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->num, -2.5);
  const JsonValue* c = v->find("c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->array.size(), 3u);
  const JsonValue* d = v->find("d");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->str, "x");
}

TEST(JsonParser, PreservesLargeU64Exactly) {
  // 2^64 - 1 is not representable in a double; the parser must keep the
  // exact integer for counter round-trips.
  const auto v = parse_json(R"({"n": 18446744073709551615})");
  ASSERT_TRUE(v.ok());
  const JsonValue* n = v->find("n");
  ASSERT_NE(n, nullptr);
  EXPECT_TRUE(n->is_integer);
  EXPECT_EQ(n->uint_val, 18446744073709551615ULL);
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_FALSE(parse_json("{").ok());
  EXPECT_FALSE(parse_json("[1,]").ok());
  EXPECT_FALSE(parse_json("{} trailing").ok());
  EXPECT_FALSE(parse_json("'single'").ok());
}

TEST(RegistryJson, RoundTripsAllThreeKinds) {
  MetricsRegistry reg;
  reg.add("dev.reads", 12345);
  reg.add("dev.bytes", 18446744073709551615ULL);  // u64 max survives
  reg.set("dev.util", 0.12345678901234);
  reg.set("dev.neg", -1.5e-9);
  reg.histo("dev.lat").record(1);
  reg.histo("dev.lat").record(999);
  reg.histo("dev.lat").record(1u << 20);

  const std::string json = reg.to_json();
  const auto back = MetricsRegistry::from_json(json);
  ASSERT_TRUE(back.ok()) << back.status().message();

  EXPECT_EQ(back->counter("dev.reads"), 12345u);
  EXPECT_EQ(back->counter("dev.bytes"), 18446744073709551615ULL);
  EXPECT_DOUBLE_EQ(back->gauge("dev.util"), 0.12345678901234);
  EXPECT_DOUBLE_EQ(back->gauge("dev.neg"), -1.5e-9);
  const Histogram* h = back->histogram("dev.lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->max(), 1u << 20);

  // A second round trip is byte-identical (canonical form).
  EXPECT_EQ(back->to_json(), json);
}

TEST(RegistryJson, EmptyRegistryRoundTrips) {
  MetricsRegistry reg;
  const auto back = MetricsRegistry::from_json(reg.to_json());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
}

TEST(RegistryJson, NonFiniteGaugeRoundTripsAsNaN) {
  // A gauge that went non-finite (e.g. a rate with a zero denominator)
  // serializes as null and reads back as NaN; every finite neighbor is
  // untouched and the snapshot stays parseable end to end.
  MetricsRegistry reg;
  reg.set("g.nan", std::numeric_limits<double>::quiet_NaN());
  reg.set("g.inf", std::numeric_limits<double>::infinity());
  reg.set("g.ninf", -std::numeric_limits<double>::infinity());
  reg.set("g.ok", 2.5);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"g.nan\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.inf\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g.ninf\": null"), std::string::npos) << json;

  const auto back = MetricsRegistry::from_json(json);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_TRUE(std::isnan(back->gauge("g.nan")));
  EXPECT_TRUE(std::isnan(back->gauge("g.inf")));
  EXPECT_TRUE(std::isnan(back->gauge("g.ninf")));
  EXPECT_DOUBLE_EQ(back->gauge("g.ok"), 2.5);
}

TEST(RegistryJson, RejectsCorruptHistogram) {
  // Bucket counts that do not sum to `count` must be rejected, not abort.
  const auto bad = MetricsRegistry::from_json(
      R"({"counters":{},"gauges":{},"histograms":)"
      R"({"h":{"count":5,"sum":10,"min":1,"max":9,"buckets":[[1,1]]}}})");
  EXPECT_FALSE(bad.ok());
  // Out-of-range bucket index likewise.
  const auto oob = MetricsRegistry::from_json(
      R"({"counters":{},"gauges":{},"histograms":)"
      R"({"h":{"count":1,"sum":1,"min":1,"max":1,"buckets":[[9999,1]]}}})");
  EXPECT_FALSE(oob.ok());
}

TEST(RegistryJson, RejectsNonObjectInput) {
  EXPECT_FALSE(MetricsRegistry::from_json("[]").ok());
  EXPECT_FALSE(MetricsRegistry::from_json("not json").ok());
}

}  // namespace
}  // namespace damkit::stats
