#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/device.h"
#include "sim/hdd.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "stats/trace_buffer.h"
#include "util/rng.h"

namespace damkit::sim {
namespace {

// A uniform random-read workload's measured setup/transfer decomposition
// must agree with HddConfig's closed-form affine expectations — the same
// consistency CI's bench-smoke gate enforces, at unit-test scale.
TEST(DeviceMetrics, HddAffineSplitMatchesClosedForm) {
  const HddConfig config = paper_hdd_profiles()[0];
  HddDevice dev(config);
  IoContext io(dev);
  Rng rng(7);
  const uint64_t tracks = config.capacity_bytes / config.track_bytes;
  const uint64_t io_bytes = config.track_bytes / 4;  // track-aligned, < track
  for (int i = 0; i < 1500; ++i) {
    io.touch_read((rng.next() % tracks) * config.track_bytes, io_bytes);
  }

  const DeviceStats& st = dev.stats();
  EXPECT_EQ(st.reads, 1500u);
  // setup + transfer account for the whole busy time.
  EXPECT_EQ(st.setup_time + st.transfer_time, st.busy_time);

  const double measured_setup = st.mean_setup_s_per_io();
  const double predicted_setup = config.expected_setup_s();
  EXPECT_NEAR(measured_setup / predicted_setup, 1.0, 0.05);

  const double measured_transfer = st.mean_transfer_s_per_byte();
  const double predicted_transfer = config.expected_transfer_s_per_byte();
  EXPECT_NEAR(measured_transfer / predicted_transfer, 1.0, 0.05);

  // The exporter publishes both sides of the comparison.
  stats::MetricsRegistry reg;
  dev.export_metrics(reg, "hdd.");
  EXPECT_DOUBLE_EQ(reg.gauge("hdd.setup_seconds_per_io"), measured_setup);
  EXPECT_DOUBLE_EQ(reg.gauge("hdd.predicted_setup_seconds_per_io"),
                   predicted_setup);
  EXPECT_EQ(reg.counter("hdd.reads"), 1500u);
#if DAMKIT_STATS_ENABLED
  // Per-IO size histograms are only recorded when stats are compiled in.
  ASSERT_NE(reg.histogram("hdd.io_size_bytes"), nullptr);
  EXPECT_EQ(reg.histogram("hdd.io_size_bytes")->count(), 1500u);
#endif
  // Seek + rotation + command decomposition sums to the setup gauge.
  EXPECT_NEAR(reg.gauge("hdd.seek_seconds") + reg.gauge("hdd.rot_wait_seconds") +
                  reg.gauge("hdd.command_seconds"),
              reg.gauge("hdd.setup_seconds"), 1e-9);
}

// A batch of one must time and count exactly like a serial submission:
// the batched path is an optimization contract, not a semantic change.
TEST(DeviceMetrics, BatchOfOneEquivalentToSerial) {
  const SsdConfig config = testbed_ssd_profile();
  const std::vector<IoRequest> reqs = {
      {IoKind::kRead, 0, 4096},
      {IoKind::kRead, config.stripe_bytes, 16384},
      {IoKind::kWrite, 4 * config.stripe_bytes, 8192},
  };

  SsdDevice serial_dev(config);
  IoContext serial_io(serial_dev);
  std::vector<IoCompletion> serial;
  for (const auto& r : reqs) {
    serial.push_back(serial_dev.submit(r, serial_io.now()));
    serial_io.advance_to(serial.back().finish);
  }

  SsdDevice batched_dev(config);
  IoContext batched_io(batched_dev);
  std::vector<IoCompletion> batched;
  for (const auto& r : reqs) {
    const auto cs = batched_io.submit_batch({&r, 1});
    batched.push_back(cs[0]);
  }

  ASSERT_EQ(serial.size(), batched.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].start, batched[i].start) << i;
    EXPECT_EQ(serial[i].finish, batched[i].finish) << i;
  }
  EXPECT_EQ(serial_io.now(), batched_io.now());

  // Identical IO counters; only the batch-path counters differ.
  const DeviceStats& s = serial_dev.stats();
  const DeviceStats& b = batched_dev.stats();
  EXPECT_EQ(s.reads, b.reads);
  EXPECT_EQ(s.writes, b.writes);
  EXPECT_EQ(s.bytes_read, b.bytes_read);
  EXPECT_EQ(s.setup_time, b.setup_time);
  EXPECT_EQ(s.transfer_time, b.transfer_time);
  EXPECT_EQ(s.batches, 0u);
  EXPECT_EQ(b.batches, 3u);
  EXPECT_EQ(b.batch_ios, 3u);
#if DAMKIT_STATS_ENABLED
  EXPECT_EQ(b.batch_ios > 0 ? batched_dev.batch_width_histogram().max() : 0u,
            1u);
#endif
}

TEST(DeviceMetrics, SsdExportsPerDieUtilization) {
  SsdConfig config;  // transparent round-robin striping: die d = stripe d
  config.channels = 2;
  config.dies_per_channel = 2;
  config.hashed_striping = false;
  SsdDevice dev(config);
  IoContext io(dev);
  // One stripe-read per die: utilizations come out balanced.
  std::vector<IoRequest> batch;
  for (int d = 0; d < config.total_dies(); ++d) {
    batch.push_back({IoKind::kRead,
                     static_cast<uint64_t>(d) * config.stripe_bytes,
                     config.stripe_bytes});
  }
  io.submit_batch(batch);

  stats::MetricsRegistry reg;
  dev.export_metrics(reg, "ssd.");
  EXPECT_GT(reg.gauge("ssd.mean_die_utilization"), 0.0);
  for (int d = 0; d < config.total_dies(); ++d) {
    const std::string key =
        "ssd.die" + std::to_string(d) + ".utilization";
    ASSERT_TRUE(reg.has_gauge(key)) << key;
    EXPECT_NEAR(reg.gauge(key), reg.gauge("ssd.mean_die_utilization"), 1e-9);
  }
}

#if DAMKIT_STATS_ENABLED
TEST(DeviceMetrics, EventTraceRecordsIos) {
  const SsdConfig config = testbed_ssd_profile();
  SsdDevice dev(config);
  stats::TraceBuffer events(16);
  dev.set_event_trace(&events);
  IoContext io(dev);
  io.touch_read(0, 4096);
  const std::vector<IoRequest> batch = {{IoKind::kRead, 0, 4096},
                                        {IoKind::kRead, config.stripe_bytes,
                                         4096}};
  io.submit_batch(batch);

  const auto recorded = events.events();
  // 1 scalar io + 1 batch marker + 2 batched ios.
  ASSERT_EQ(recorded.size(), 4u);
  EXPECT_STREQ(recorded[0].name, "read");
  EXPECT_EQ(recorded[0].v1, 4096u);
  EXPECT_STREQ(recorded[1].name, "batch");
  EXPECT_EQ(recorded[1].v0, 2u);  // width

  // Disabling collection stops emission without detaching the buffer.
  stats::set_collecting(false);
  io.touch_read(0, 4096);
  stats::set_collecting(true);
  EXPECT_EQ(events.events().size(), 4u);
}
#endif

}  // namespace
}  // namespace damkit::sim
