#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harness/parallel.h"
#include "stats/metrics.h"
#include "util/rng.h"

namespace damkit::stats {
namespace {

// Each sweep point fills its own registry from a point-seeded RNG, so the
// contents are independent of scheduling. Merging in point order must then
// be byte-identical for any thread count — the invariant bench_smoke and
// the CI regression gate rely on.
void fill_point(MetricsRegistry& reg, size_t i) {
  Rng rng(static_cast<uint64_t>(i) + 1);
  for (int k = 0; k < 50; ++k) {
    reg.add("ops", rng.next() % 100);
    reg.histo("latency").record(1 + rng.next() % 1000000);
  }
  reg.add("point" + std::to_string(i) + ".ops", i + 1);
  reg.set("hwm", static_cast<double>(rng.next() % 1000));
  reg.set("point" + std::to_string(i) + ".util",
          static_cast<double>(i) / 16.0);
}

MetricsRegistry sweep_and_merge(size_t points, int threads) {
  std::vector<MetricsRegistry> per_point(points);
  harness::parallel_sweep(points, threads,
                          [&](size_t i) { fill_point(per_point[i], i); });
  MetricsRegistry merged;
  for (const auto& reg : per_point) merged.merge(reg);
  return merged;
}

TEST(RegistryMergeParallel, DeterministicAcrossThreadCounts) {
  const MetricsRegistry serial = sweep_and_merge(16, 1);
  const std::string golden = serial.to_json();
  for (int threads : {2, 4, 8}) {
    const MetricsRegistry parallel = sweep_and_merge(16, threads);
    EXPECT_EQ(parallel.to_json(), golden) << "threads=" << threads;
  }
}

TEST(RegistryMergeParallel, MergedValuesMatchSerialReplay) {
  const MetricsRegistry merged = sweep_and_merge(8, 4);
  // Replay the same point workloads serially and compare values.
  uint64_t expected_ops = 0;
  for (size_t i = 0; i < 8; ++i) {
    Rng rng(static_cast<uint64_t>(i) + 1);
    for (int k = 0; k < 50; ++k) {
      expected_ops += rng.next() % 100;
      rng.next();  // histogram draw
    }
    EXPECT_EQ(merged.counter("point" + std::to_string(i) + ".ops"), i + 1);
  }
  EXPECT_EQ(merged.counter("ops"), expected_ops);
  const Histogram* h = merged.histogram("latency");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 8u * 50u);
}

}  // namespace
}  // namespace damkit::stats
