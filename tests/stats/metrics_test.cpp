#include "stats/metrics.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/histogram.h"

namespace damkit::stats {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.has_counter("ios"));
  EXPECT_EQ(reg.counter("ios"), 0u);
  reg.add("ios", 3);
  reg.add("ios", 4);
  EXPECT_TRUE(reg.has_counter("ios"));
  EXPECT_EQ(reg.counter("ios"), 7u);
}

TEST(MetricsRegistry, GaugesOverwrite) {
  MetricsRegistry reg;
  reg.set("depth", 4.0);
  reg.set("depth", 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge("depth"), 2.5);
}

TEST(MetricsRegistry, ClearResetsEverything) {
  MetricsRegistry reg;
  reg.add("c", 1);
  reg.set("g", 1.0);
  reg.histo("h").record(10);
  reg.clear();
  EXPECT_TRUE(reg.empty());
  EXPECT_FALSE(reg.has_counter("c"));
  EXPECT_FALSE(reg.has_gauge("g"));
  EXPECT_EQ(reg.histogram("h"), nullptr);
}

TEST(MetricsRegistry, MergeAddsCountersMaxesGauges) {
  MetricsRegistry a;
  a.add("ios", 5);
  a.set("hwm", 10.0);
  a.set("only_a", 1.0);
  MetricsRegistry b;
  b.add("ios", 7);
  b.add("only_b", 2);
  b.set("hwm", 4.0);
  a.merge(b);
  EXPECT_EQ(a.counter("ios"), 12u);
  EXPECT_EQ(a.counter("only_b"), 2u);
  EXPECT_DOUBLE_EQ(a.gauge("hwm"), 10.0);  // max wins
  EXPECT_DOUBLE_EQ(a.gauge("only_a"), 1.0);
}

TEST(MetricsRegistry, MergeCombinesHistograms) {
  MetricsRegistry a;
  a.histo("lat").record(1);
  a.histo("lat").record(100);
  MetricsRegistry b;
  b.histo("lat").record(1000000);
  a.merge(b);
  const Histogram* h = a.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 3u);
  EXPECT_EQ(h->sum(), 1000101u);
  EXPECT_EQ(h->min(), 1u);
  EXPECT_EQ(h->max(), 1000000u);
}

TEST(MetricsRegistry, IterationIsSorted) {
  MetricsRegistry reg;
  reg.add("zebra", 1);
  reg.add("alpha", 1);
  reg.add("middle", 1);
  std::vector<std::string> names;
  reg.for_each_counter(
      [&](const std::string& name, uint64_t) { names.push_back(name); });
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "middle", "zebra"}));
}

TEST(HistogramBuckets, ForEachBucketRoundTripsCounts) {
  Histogram h;
  const uint64_t values[] = {1, 2, 3, 17, 1024, 1025, 70000};
  for (uint64_t v : values) h.record(v);
  uint64_t total = 0;
  std::vector<std::pair<int, uint64_t>> buckets;
  h.for_each_bucket([&](int index, uint64_t floor, uint64_t count) {
    EXPECT_GE(index, 0);
    EXPECT_LT(index, Histogram::bucket_limit());
    EXPECT_LE(floor, 70000u);
    total += count;
    buckets.push_back({index, count});
  });
  EXPECT_EQ(total, h.count());

  // restore() rebuilds an identical histogram from the bucket dump.
  const Histogram r =
      Histogram::restore(h.count(), h.sum(), h.min(), h.max(), buckets);
  EXPECT_EQ(r.count(), h.count());
  EXPECT_EQ(r.sum(), h.sum());
  EXPECT_EQ(r.min(), h.min());
  EXPECT_EQ(r.max(), h.max());
  EXPECT_EQ(r.percentile(50), h.percentile(50));
  EXPECT_EQ(r.percentile(99), h.percentile(99));
}

TEST(HistogramBuckets, BucketFloorsAreMonotone) {
  Histogram h;
  for (uint64_t v = 1; v < 5000; v += 7) h.record(v);
  uint64_t last_floor = 0;
  bool first = true;
  h.for_each_bucket([&](int, uint64_t floor, uint64_t) {
    if (!first) {
      EXPECT_GT(floor, last_floor);
    }
    last_floor = floor;
    first = false;
  });
}

#if DAMKIT_STATS_ENABLED
TEST(Collecting, RuntimeToggle) {
  EXPECT_TRUE(collecting());  // default on
  set_collecting(false);
  EXPECT_FALSE(collecting());
  set_collecting(true);
  EXPECT_TRUE(collecting());
}
#endif

}  // namespace
}  // namespace damkit::stats
