#include "stats/trace_buffer.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace damkit::stats {
namespace {

TEST(TraceBuffer, EmitAndReadBack) {
  TraceBuffer buf(8);
  buf.emit({100, "io", "read", 4096, 64, 7});
  buf.emit({200, "cache", "evict", 3, 1024, 0});
  ASSERT_EQ(buf.size(), 2u);
  const auto events = buf.events();
  EXPECT_EQ(events[0].t, 100u);
  EXPECT_STREQ(events[0].category, "io");
  EXPECT_STREQ(events[0].name, "read");
  EXPECT_EQ(events[0].v0, 4096u);
  EXPECT_EQ(events[1].t, 200u);
  EXPECT_EQ(events[1].v1, 1024u);
}

TEST(TraceBuffer, RingOverwritesOldestAndTracksSeq) {
  TraceBuffer buf(4);
  for (uint64_t i = 0; i < 10; ++i) {
    buf.emit({i, "io", "read", i, 0, 0});
  }
  EXPECT_EQ(buf.size(), 4u);          // capacity bound holds
  EXPECT_EQ(buf.total_emitted(), 10u);
  const auto events = buf.events();   // oldest-first among survivors
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().t, 6u);
  EXPECT_EQ(events.back().t, 9u);
}

TEST(TraceBuffer, JsonlHasOneObjectPerLine) {
  TraceBuffer buf(4);
  buf.emit({1, "betree", "flush", 2, 37, 0});
  buf.emit({2, "lsm", "compaction", 1, 100, 80});
  const std::string jsonl = buf.to_jsonl();
  size_t lines = 0;
  for (char ch : jsonl) lines += (ch == '\n') ? 1 : 0;
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"cat\": \"betree\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"name\": \"compaction\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"v2\": 80"), std::string::npos);
}

TEST(TraceBuffer, SeqContinuesAcrossOverflow) {
  TraceBuffer buf(2);
  for (uint64_t i = 0; i < 5; ++i) buf.emit({i, "io", "read", 0, 0, 0});
  const std::string jsonl = buf.to_jsonl();
  // Survivors are emissions 3 and 4; their seq numbers are global.
  EXPECT_NE(jsonl.find("\"seq\": 3"), std::string::npos);
  EXPECT_NE(jsonl.find("\"seq\": 4"), std::string::npos);
  EXPECT_EQ(jsonl.find("\"seq\": 0"), std::string::npos);
}

TEST(TraceBuffer, ClearEmpties) {
  TraceBuffer buf(4);
  buf.emit({1, "io", "read", 0, 0, 0});
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.to_jsonl().empty());
}

TEST(TraceBuffer, DumpJsonlWritesFile) {
  TraceBuffer buf(4);
  buf.emit({1, "io", "write", 8192, 4096, 123});
  const std::string path = ::testing::TempDir() + "trace_buffer_test.jsonl";
  ASSERT_TRUE(buf.dump_jsonl(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256] = {};
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(std::string(line).find("\"v0\": 8192"), std::string::npos);
}

}  // namespace
}  // namespace damkit::stats
