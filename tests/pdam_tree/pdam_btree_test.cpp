#include "pdam_tree/pdam_btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.h"

namespace damkit::pdam_tree {
namespace {

std::vector<uint64_t> make_keys(uint64_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  for (auto& k : keys) k = rng.next() >> 1;  // leave headroom below +inf
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

PdamTreeConfig config(int p = 8, uint64_t block = 4096,
                      NodeLayout layout = NodeLayout::kVeb) {
  PdamTreeConfig cfg;
  cfg.parallelism = p;
  cfg.block_bytes = block;
  cfg.slot_bytes = 16;
  cfg.layout = layout;
  return cfg;
}

TEST(PdamBTreeTest, LowerBoundMatchesStd) {
  const auto keys = make_keys(10000);
  PdamBTree tree(keys, config());
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t q = rng.next() >> 1;
    const uint64_t expect = static_cast<uint64_t>(
        std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
    EXPECT_EQ(tree.lower_bound(q), expect) << q;
  }
  // Exact hits.
  for (size_t i = 0; i < keys.size(); i += 97) {
    EXPECT_EQ(tree.lower_bound(keys[i]), i);
  }
}

TEST(PdamBTreeTest, GeometrySane) {
  const auto keys = make_keys(100000);
  PdamBTree tree(keys, config(8, 4096));
  // 8 × 4096/16 = 2048 slots → pivot tree height 11, blocks ≈ 8.
  EXPECT_EQ(tree.node_height(), 11);
  EXPECT_EQ(tree.node_blocks(), 8u);
  EXPECT_GE(tree.global_height(), 17);
}

TEST(PdamBTreeTest, RunCompletesAllQueries) {
  const auto keys = make_keys(50000);
  PdamBTree tree(keys, config());
  const auto r = tree.run_queries(4, 50, 7);
  EXPECT_EQ(r.queries, 200u);
  EXPECT_GT(r.steps, 0u);
  EXPECT_GT(r.block_fetch_runs, 0u);
}

TEST(PdamBTreeTest, SingleClientStepsMatchNodeLevels) {
  // k=1 gets all P blocks per step: one step per PB-node level.
  const auto keys = make_keys(200000);
  PdamBTree tree(keys, config(8));
  const auto r = tree.run_queries(1, 100, 7);
  const double levels =
      std::ceil(static_cast<double>(tree.global_height()) /
                static_cast<double>(tree.node_height()));
  const double steps_per_query =
      static_cast<double>(r.steps) / static_cast<double>(r.queries);
  EXPECT_NEAR(steps_per_query, levels, levels * 0.25);
}

TEST(PdamBTreeTest, ThroughputGrowsWithClients) {
  const auto keys = make_keys(200000);
  PdamBTree tree(keys, config(8));
  double prev = 0.0;
  for (int k : {1, 2, 4, 8}) {
    const auto r = tree.run_queries(k, 200, 11);
    EXPECT_GT(r.throughput(), prev) << "k=" << k;
    prev = r.throughput();
  }
}

TEST(PdamBTreeTest, ThroughputSaturatesBeyondP) {
  const auto keys = make_keys(200000);
  PdamBTree tree(keys, config(4));
  const double at_p = tree.run_queries(4, 200, 11).throughput();
  const double beyond = tree.run_queries(16, 50, 11).throughput();
  // Beyond P, extra clients only wait; throughput must not grow much.
  EXPECT_LT(beyond, at_p * 1.3);
}

TEST(PdamBTreeTest, VebAtLeastAsGoodAsBfsForIntermediateClients) {
  const auto keys = make_keys(400000);
  PdamBTree veb(keys, config(16, 1024, NodeLayout::kVeb));
  PdamBTree bfs(keys, config(16, 1024, NodeLayout::kBfs));
  // Intermediate k: read-ahead window of P/k blocks is where vEB wins.
  for (int k : {2, 4}) {
    const double tv = veb.run_queries(k, 100, 13).throughput();
    const double tb = bfs.run_queries(k, 100, 13).throughput();
    EXPECT_GE(tv, tb * 0.99) << "k=" << k;
  }
}

TEST(PdamBTreeTest, DeterministicRuns) {
  const auto keys = make_keys(30000);
  PdamBTree tree(keys, config());
  const auto a = tree.run_queries(3, 100, 21);
  const auto b = tree.run_queries(3, 100, 21);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.block_fetch_runs, b.block_fetch_runs);
}

TEST(PdamBTreeTest, TinyTreeWorks) {
  const std::vector<uint64_t> keys{10, 20, 30};
  PdamBTree tree(keys, config(2, 1024));
  EXPECT_EQ(tree.lower_bound(5), 0u);
  EXPECT_EQ(tree.lower_bound(20), 1u);
  EXPECT_EQ(tree.lower_bound(25), 2u);
  EXPECT_EQ(tree.lower_bound(31), 3u);
  const auto r = tree.run_queries(2, 10, 3);
  EXPECT_EQ(r.queries, 20u);
}

TEST(PdamBTreeDeathTest, RejectsBadInput) {
  EXPECT_DEATH(PdamBTree({}, config()), "");
  EXPECT_DEATH(PdamBTree({3, 2, 1}, config()), "");
  const std::vector<uint64_t> keys{1, 2};
  PdamBTree tree(keys, config());
  EXPECT_DEATH(tree.run_queries(0, 10, 1), "");
}

}  // namespace
}  // namespace damkit::pdam_tree
