#include "pdam_tree/veb_layout.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace damkit::pdam_tree {
namespace {

TEST(VebLayoutTest, IsPermutation) {
  for (int h = 1; h <= 12; ++h) {
    const auto pos = veb_positions(h);
    const uint64_t n = (1ULL << h) - 1;
    ASSERT_EQ(pos.size(), n);
    std::set<uint32_t> seen(pos.begin(), pos.end());
    EXPECT_EQ(seen.size(), n) << "height " << h;
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), n - 1);
  }
}

TEST(VebLayoutTest, HeightOneAndTwo) {
  EXPECT_EQ(veb_positions(1), std::vector<uint32_t>({0}));
  // Height 2: top = height 1 (root), bottoms = two height-1 leaves.
  const auto pos = veb_positions(2);
  EXPECT_EQ(pos[0], 0u);  // root first
  EXPECT_EQ(pos[1], 1u);  // left leaf
  EXPECT_EQ(pos[2], 2u);  // right leaf
}

TEST(VebLayoutTest, HeightFourStructure) {
  // h=4: top tree height 2 (nodes 1,2,3), then four bottom trees of
  // height 2 rooted at 4,5,6,7.
  const auto pos = veb_positions(4);
  EXPECT_EQ(pos[0], 0u);  // node 1
  EXPECT_EQ(pos[1], 1u);  // node 2
  EXPECT_EQ(pos[2], 2u);  // node 3
  // Bottom tree at 4 occupies slots 3,4,5: nodes 4, 8, 9.
  EXPECT_EQ(pos[3], 3u);
  EXPECT_EQ(pos[7], 4u);
  EXPECT_EQ(pos[8], 5u);
  // Bottom tree at 5: nodes 5, 10, 11 → slots 6,7,8.
  EXPECT_EQ(pos[4], 6u);
  EXPECT_EQ(pos[9], 7u);
  EXPECT_EQ(pos[10], 8u);
}

TEST(VebLayoutTest, SubtreesAreContiguous) {
  // Defining property: each bottom subtree occupies a contiguous slot
  // range. Check for height 8 with bottom height 4 at depth 4.
  const int h = 8;
  const auto pos = veb_positions(h);
  const int top = h / 2;
  for (uint64_t root = (1ULL << top); root < (1ULL << (top + 1)); ++root) {
    // Gather all descendants of `root` within the bottom height.
    std::vector<uint32_t> slots;
    const int bottom = h - top;
    for (int d = 0; d < bottom; ++d) {
      for (uint64_t v = root << d; v < (root << d) + (1ULL << d); ++v) {
        slots.push_back(pos[v - 1]);
      }
    }
    std::sort(slots.begin(), slots.end());
    for (size_t i = 1; i < slots.size(); ++i) {
      EXPECT_EQ(slots[i], slots[i - 1] + 1) << "root " << root;
    }
  }
}

TEST(VebLayoutTest, RootToLeafPathTouchesFewRuns) {
  // A root-to-leaf walk in vEB order should hop between far fewer
  // contiguous regions than the BFS layout for the same height.
  const int h = 16;
  const auto veb = veb_positions(h);
  const auto bfs = bfs_positions(h);
  auto count_runs = [&](const std::vector<uint32_t>& pos, uint64_t leaf_path,
                        uint32_t run_len) {
    uint64_t v = 1;
    int runs = 1;
    uint32_t run_start = pos[0] / run_len;
    for (int d = 0; d + 1 < h; ++d) {
      v = 2 * v + ((leaf_path >> d) & 1);
      const uint32_t region = pos[v - 1] / run_len;
      if (region != run_start) {
        ++runs;
        run_start = region;
      }
    }
    return runs;
  };
  int veb_runs = 0, bfs_runs = 0;
  for (uint64_t path = 0; path < 64; ++path) {
    veb_runs += count_runs(veb, path * 0x9e3779b9ULL, 256);
    bfs_runs += count_runs(bfs, path * 0x9e3779b9ULL, 256);
  }
  EXPECT_LT(veb_runs, bfs_runs);
}

TEST(BfsLayoutTest, Identity) {
  const auto pos = bfs_positions(5);
  for (size_t i = 0; i < pos.size(); ++i) EXPECT_EQ(pos[i], i);
}

TEST(VebLayoutDeathTest, RejectsBadHeights) {
  EXPECT_DEATH(veb_positions(0), "");
  EXPECT_DEATH(veb_positions(31), "");
}

}  // namespace
}  // namespace damkit::pdam_tree
