// Tests for the batched submission path (Device::submit_batch and
// IoContext::submit_batch): a batch of one must be bit-identical to the
// serial path, an SSD batch must exploit die parallelism per the PDAM,
// and the nondecreasing-clock contract must abort loudly when violated.
#include <gtest/gtest.h>

#include <vector>

#include "sim/device.h"
#include "sim/hdd.h"
#include "sim/ssd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::sim {
namespace {

HddConfig hdd_config() {
  HddConfig cfg;
  cfg.name = "batch-test-hdd";
  cfg.capacity_bytes = 8ULL * kGiB;
  cfg.rpm = 7200;
  cfg.track_to_track_s = 0.001;
  cfg.full_stroke_s = 0.015;
  cfg.avg_bandwidth_bps = 150e6;
  cfg.track_bytes = kMiB;
  return cfg;
}

SsdConfig ssd_config(int channels, int dies_per_channel) {
  SsdConfig cfg;
  cfg.name = "batch-test-ssd";
  cfg.capacity_bytes = 4ULL * kGiB;
  cfg.channels = channels;
  cfg.dies_per_channel = dies_per_channel;
  cfg.page_bytes = 4096;
  cfg.stripe_bytes = 64 * kKiB;
  cfg.page_read_s = 50e-6;
  cfg.page_write_s = 200e-6;
  cfg.bus_s_per_page = 2e-6;
  cfg.command_overhead_s = 10e-6;
  return cfg;
}

TEST(BatchIoTest, HddBatchOfOneMatchesSerial) {
  const HddConfig cfg = hdd_config();
  HddDevice serial(cfg, 3);
  HddDevice batched(cfg, 3);  // same seed → same initial head position
  SimTime t = 0;
  Rng rng(9);
  for (int i = 0; i < 32; ++i) {
    const uint64_t off = rng.uniform(cfg.capacity_bytes / 4096) * 4096;
    const IoRequest req{IoKind::kRead, off, 4096};
    const IoCompletion a = serial.submit(req, t);
    const auto b = batched.submit_batch({&req, 1}, t);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a.start, b[0].start);
    EXPECT_EQ(a.finish, b[0].finish);
    t = a.finish;
  }
}

TEST(BatchIoTest, SsdBatchOfOneMatchesSerial) {
  const SsdConfig cfg = ssd_config(2, 2);
  SsdDevice serial(cfg);
  SsdDevice batched(cfg);
  SimTime t = 0;
  Rng rng(11);
  for (int i = 0; i < 32; ++i) {
    const uint64_t off = rng.uniform(cfg.capacity_bytes / 4096) * 4096;
    const IoRequest req{IoKind::kRead, off, 64 * kKiB};
    const IoCompletion a = serial.submit(req, t);
    const auto b = batched.submit_batch({&req, 1}, t);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(a.start, b[0].start);
    EXPECT_EQ(a.finish, b[0].finish);
    t = a.finish;
  }
}

TEST(BatchIoTest, IoContextBatchOfOneMatchesTouchRead) {
  const SsdConfig cfg = ssd_config(2, 2);
  SsdDevice dev_a(cfg);
  SsdDevice dev_b(cfg);
  IoContext serial(dev_a);
  IoContext batched(dev_b);
  for (int i = 0; i < 8; ++i) {
    const IoRequest req{IoKind::kRead,
                        static_cast<uint64_t>(i) * 64 * kKiB, 64 * kKiB};
    serial.touch_read(req.offset, req.length);
    batched.submit_batch({&req, 1});
    EXPECT_EQ(serial.now(), batched.now());
  }
}

TEST(BatchIoTest, HddFifoBatchMatchesSerialLoop) {
  // With kFifo the batch serializes through the single actuator in
  // submission order, exactly like a serial loop that waits out each IO.
  HddConfig cfg = hdd_config();
  cfg.batch_policy = SchedPolicy::kFifo;
  HddDevice serial(cfg, 5);
  HddDevice batched(cfg, 5);
  std::vector<IoRequest> reqs;
  Rng rng(17);
  for (int i = 0; i < 16; ++i) {
    const uint64_t off = rng.uniform(cfg.capacity_bytes / 4096) * 4096;
    reqs.push_back({IoKind::kRead, off, 4096});
  }
  SimTime t = 0;
  std::vector<IoCompletion> expect;
  for (const IoRequest& r : reqs) {
    const IoCompletion c = serial.submit(r, t);
    expect.push_back(c);
    t = c.finish;
  }
  const auto got = batched.submit_batch(reqs, 0);
  ASSERT_EQ(got.size(), expect.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].start, expect[i].start) << "request " << i;
    EXPECT_EQ(got[i].finish, expect[i].finish) << "request " << i;
  }
}

TEST(BatchIoTest, HddSstfBatchNoSlowerThanFifo) {
  HddConfig fifo_cfg = hdd_config();
  fifo_cfg.batch_policy = SchedPolicy::kFifo;
  HddConfig sstf_cfg = hdd_config();
  sstf_cfg.batch_policy = SchedPolicy::kSstf;

  std::vector<IoRequest> reqs;
  Rng rng(23);
  for (int i = 0; i < 32; ++i) {
    const uint64_t off = rng.uniform(fifo_cfg.capacity_bytes / 4096) * 4096;
    reqs.push_back({IoKind::kRead, off, 4096});
  }
  HddDevice fifo(fifo_cfg, 7);
  HddDevice sstf(sstf_cfg, 7);
  SimTime fifo_done = 0, sstf_done = 0;
  for (const IoCompletion& c : fifo.submit_batch(reqs, 0)) {
    fifo_done = std::max(fifo_done, c.finish);
  }
  for (const IoCompletion& c : sstf.submit_batch(reqs, 0)) {
    sstf_done = std::max(sstf_done, c.finish);
  }
  // Seek-sorted service of a random window can only reduce total seeking.
  EXPECT_LE(sstf_done, fifo_done);
}

TEST(BatchIoTest, SsdBatchExploitsDieParallelism) {
  // The PDAM acceptance bar: P ≥ 8 independent IOs served as one batch
  // must run ≥ 1.5× faster than the serial one-at-a-time path. With 16
  // dies and 16 disjoint-die requests the win should be near-linear.
  const SsdConfig cfg = ssd_config(4, 4);  // P = 16 dies
  std::vector<IoRequest> reqs;
  for (int i = 0; i < 16; ++i) {
    // Consecutive stripes round-robin across all 16 dies.
    reqs.push_back({IoKind::kRead,
                    static_cast<uint64_t>(i) * cfg.stripe_bytes, 64 * kKiB});
  }
  SsdDevice serial_dev(cfg);
  IoContext serial(serial_dev);
  for (const IoRequest& r : reqs) serial.touch_read(r.offset, r.length);
  const SimTime serial_elapsed = serial.now();

  SsdDevice batch_dev(cfg);
  IoContext batched(batch_dev);
  batched.submit_batch(reqs);
  const SimTime batch_elapsed = batched.now();

  ASSERT_GT(batch_elapsed, 0u);
  const double speedup = static_cast<double>(serial_elapsed) /
                         static_cast<double>(batch_elapsed);
  EXPECT_GE(speedup, 1.5);
  EXPECT_GE(speedup, 8.0);  // disjoint dies: expect near the full P = 16
}

TEST(BatchIoTest, MultiStripeRequestsPayFullDispatchWeight) {
  // Regression for the first-stripe-only bucketing bug: batch dispatch
  // buckets requests by their FIRST stripe's die, but a w-stripe request
  // occupies w dies' worth of service. It must therefore consume w
  // round-robin credits (its bucket sits out the next w−1 rounds) instead
  // of letting its bucket claim a fresh slot every round and starve other
  // dies' requests on shared downstream resources.
  //
  // A slow host link serializes payloads in dispatch order, making that
  // order observable. Buckets: die 0 holds A (4-stripe) then B; die 1
  // holds C then D. Weighted round-robin dispatches A, C, D, B — die 1's
  // second request overtakes die 0's because A already spent die 0's
  // credit four rounds ahead. The buggy unweighted order was A, C, B, D.
  SsdConfig cfg = ssd_config(2, 2);
  cfg.link_bps = 1e6;  // 64 KiB ≈ 65 ms on the link: dominates flash time
  SsdDevice dev(cfg);
  const std::vector<IoRequest> reqs = {
      {IoKind::kRead, 0, 256 * kKiB},              // A: dies 0..3, bucket 0
      {IoKind::kRead, 4 * 64 * kKiB, 64 * kKiB},   // B: die 0
      {IoKind::kRead, 64 * kKiB, 64 * kKiB},       // C: die 1
      {IoKind::kRead, 5 * 64 * kKiB, 64 * kKiB},   // D: die 1
  };
  const std::vector<IoCompletion> cs = dev.submit_batch(reqs, 0);
  ASSERT_EQ(cs.size(), 4u);
  EXPECT_LT(cs[3].finish, cs[1].finish);  // D crosses the link before B
}

TEST(BatchIoTest, BatchAdvancesClockToMaxNotSum) {
  const SsdConfig cfg = ssd_config(4, 4);
  SsdDevice dev(cfg);
  IoContext io(dev);
  std::vector<IoRequest> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back({IoKind::kRead,
                    static_cast<uint64_t>(i) * cfg.stripe_bytes, 64 * kKiB});
  }
  const auto cs = io.submit_batch(reqs);
  SimTime max_finish = 0;
  SimTime sum = 0;
  for (const IoCompletion& c : cs) {
    max_finish = std::max(max_finish, c.finish);
    sum += c.finish - c.start;
  }
  EXPECT_EQ(io.now(), max_finish);
  EXPECT_LT(io.now(), sum);  // strictly better than serial accumulation
}

TEST(BatchIoDeathTest, ClockMustNotRunBackwards) {
  SsdDevice dev(ssd_config(2, 2));
  dev.submit({IoKind::kRead, 0, 4096}, 1000);
  EXPECT_DEATH(dev.submit({IoKind::kRead, 0, 4096}, 500),
               "clock ran backwards");
}

TEST(BatchIoDeathTest, BatchClockMustNotRunBackwards) {
  HddDevice dev(hdd_config());
  const IoRequest req{IoKind::kRead, 0, 4096};
  dev.submit_batch({&req, 1}, 1000);
  EXPECT_DEATH(dev.submit_batch({&req, 1}, 999), "clock ran backwards");
}

}  // namespace
}  // namespace damkit::sim
