#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::sim {
namespace {

HddConfig disk_config() {
  HddConfig cfg;
  cfg.capacity_bytes = 32ULL * kGiB;
  return cfg;
}

std::vector<TimedRequest> random_reads(int n, uint64_t seed,
                                       uint64_t capacity) {
  Rng rng(seed);
  std::vector<TimedRequest> reqs;
  reqs.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const uint64_t off = rng.uniform(capacity / 4096 - 1) * 4096;
    reqs.push_back({{IoKind::kRead, off, 4096}, 0});
  }
  return reqs;
}

TEST(SchedulerTest, CompletesEverything) {
  HddDevice dev(disk_config(), 1);
  const auto reqs = random_reads(200, 3, dev.capacity_bytes());
  const SchedulerResult r =
      run_scheduled(dev, {SchedPolicy::kFifo, 1}, reqs);
  EXPECT_EQ(r.ios, 200u);
  EXPECT_EQ(r.latency.count(), 200u);
  EXPECT_GT(r.makespan, 0u);
}

TEST(SchedulerTest, FifoIgnoresQueueDepth) {
  const auto reqs = random_reads(300, 5, disk_config().capacity_bytes);
  HddDevice a(disk_config(), 1);
  HddDevice b(disk_config(), 1);
  const SimTime t1 = run_scheduled(a, {SchedPolicy::kFifo, 1}, reqs).makespan;
  const SimTime t32 =
      run_scheduled(b, {SchedPolicy::kFifo, 32}, reqs).makespan;
  EXPECT_EQ(t1, t32);
}

TEST(SchedulerTest, SstfBeatsFifoWithDepth) {
  const auto reqs = random_reads(400, 7, disk_config().capacity_bytes);
  HddDevice a(disk_config(), 1);
  HddDevice b(disk_config(), 1);
  const SimTime fifo = run_scheduled(a, {SchedPolicy::kFifo, 1}, reqs).makespan;
  const SimTime sstf =
      run_scheduled(b, {SchedPolicy::kSstf, 32}, reqs).makespan;
  EXPECT_LT(sstf, fifo * 7 / 10);  // > 30% faster at depth 32
}

TEST(SchedulerTest, ScanBeatsFifoWithDepth) {
  const auto reqs = random_reads(400, 9, disk_config().capacity_bytes);
  HddDevice a(disk_config(), 1);
  HddDevice b(disk_config(), 1);
  const SimTime fifo = run_scheduled(a, {SchedPolicy::kFifo, 1}, reqs).makespan;
  const SchedulerResult scan =
      run_scheduled(b, {SchedPolicy::kScan, 32}, reqs);
  EXPECT_LT(scan.makespan, fifo * 7 / 10);
  EXPECT_GT(scan.direction_reversals, 0u);
}

TEST(SchedulerTest, DeeperQueuesHelpMore) {
  const auto reqs = random_reads(400, 11, disk_config().capacity_bytes);
  SimTime prev = ~0ULL;
  for (size_t depth : {1u, 4u, 16u, 64u}) {
    HddDevice dev(disk_config(), 1);
    const SimTime t =
        run_scheduled(dev, {SchedPolicy::kSstf, depth}, reqs).makespan;
    EXPECT_LE(t, prev + prev / 50);  // monotone within 2% noise
    prev = t;
  }
}

TEST(SchedulerTest, DepthOneMatchesFifoRegardlessOfPolicy) {
  const auto reqs = random_reads(150, 13, disk_config().capacity_bytes);
  HddDevice a(disk_config(), 1);
  HddDevice b(disk_config(), 1);
  const SimTime fifo = run_scheduled(a, {SchedPolicy::kFifo, 1}, reqs).makespan;
  const SimTime sstf = run_scheduled(b, {SchedPolicy::kSstf, 1}, reqs).makespan;
  EXPECT_EQ(fifo, sstf);
}

TEST(SchedulerTest, HonorsAvailabilityTimes) {
  HddDevice dev(disk_config(), 1);
  // One request far in the future: the scheduler must idle, not reorder
  // it ahead of time.
  std::vector<TimedRequest> reqs;
  reqs.push_back({{IoKind::kRead, 0, 4096}, 0});
  const SimTime late = 10 * kNsPerSec;
  reqs.push_back({{IoKind::kRead, 4096, 4096}, late});
  const SchedulerResult r =
      run_scheduled(dev, {SchedPolicy::kSstf, 16}, reqs);
  EXPECT_GE(r.makespan, late);
}

TEST(SchedulerTest, EmptyInput) {
  HddDevice dev(disk_config(), 1);
  const SchedulerResult r = run_scheduled(dev, {SchedPolicy::kScan, 8}, {});
  EXPECT_EQ(r.ios, 0u);
  EXPECT_EQ(r.makespan, 0u);
}

TEST(SchedulerTest, PolicyNames) {
  EXPECT_STREQ(sched_policy_name(SchedPolicy::kFifo), "FIFO");
  EXPECT_STREQ(sched_policy_name(SchedPolicy::kSstf), "SSTF");
  EXPECT_STREQ(sched_policy_name(SchedPolicy::kScan), "SCAN");
}

TEST(SchedulerDeathTest, ZeroDepthRejected) {
  HddDevice dev(disk_config(), 1);
  EXPECT_DEATH(run_scheduled(dev, {SchedPolicy::kFifo, 0},
                             random_reads(2, 1, dev.capacity_bytes())),
               "");
}

}  // namespace
}  // namespace damkit::sim
