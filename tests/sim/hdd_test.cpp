#include "sim/hdd.h"

#include <gtest/gtest.h>

#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::sim {
namespace {

HddConfig small_config() {
  HddConfig cfg;
  cfg.name = "test-hdd";
  cfg.capacity_bytes = 8ULL * kGiB;
  cfg.rpm = 7200;
  cfg.track_to_track_s = 0.001;
  cfg.full_stroke_s = 0.015;
  cfg.avg_bandwidth_bps = 150e6;
  cfg.track_bytes = kMiB;
  return cfg;
}

TEST(HddTest, SeekCurveMonotone) {
  HddDevice dev(small_config());
  EXPECT_DOUBLE_EQ(dev.seek_time_s(0), 0.0);
  double prev = 0.0;
  for (uint64_t d = 1; d < dev.num_tracks(); d *= 4) {
    const double s = dev.seek_time_s(d);
    EXPECT_GT(s, prev);
    prev = s;
  }
  EXPECT_GE(dev.seek_time_s(1), small_config().track_to_track_s);
  EXPECT_LE(dev.seek_time_s(dev.num_tracks() - 1),
            small_config().full_stroke_s * 1.001);
}

TEST(HddTest, ZonedBandwidthOuterFaster) {
  HddDevice dev(small_config());
  EXPECT_GT(dev.bandwidth_at(0), dev.bandwidth_at(dev.num_tracks() - 1));
  // Surface-average close to configured average.
  double sum = 0.0;
  const int samples = 100;
  for (int i = 0; i < samples; ++i) {
    sum += dev.bandwidth_at(dev.num_tracks() * i / samples);
  }
  EXPECT_NEAR(sum / samples, 150e6, 150e6 * 0.02);
}

TEST(HddTest, CompletionAfterSubmission) {
  HddDevice dev(small_config());
  const IoCompletion c = dev.submit({IoKind::kRead, 0, 4096}, 1000);
  EXPECT_GE(c.start, 1000u);
  EXPECT_GT(c.finish, c.start);
}

TEST(HddTest, SingleActuatorQueues) {
  HddDevice dev(small_config());
  const IoCompletion a = dev.submit({IoKind::kRead, 0, 4096}, 0);
  // Submitted while the first IO is in flight: must start after it ends.
  const IoCompletion b = dev.submit({IoKind::kRead, 4 * kGiB, 4096}, 1);
  EXPECT_GE(b.start, a.finish);
}

TEST(HddTest, LargerIosTakeLonger) {
  const HddConfig cfg = small_config();
  SimTime small_lat, big_lat;
  {
    HddDevice dev(cfg, 1);
    const IoCompletion c = dev.submit({IoKind::kRead, kGiB, 4096}, 0);
    small_lat = c.finish - c.start;
  }
  {
    HddDevice dev(cfg, 1);  // same seed → same initial head position
    const IoCompletion c = dev.submit({IoKind::kRead, kGiB, 16 * kMiB}, 0);
    big_lat = c.finish - c.start;
  }
  EXPECT_GT(big_lat, small_lat);
  // 16 MiB at ~150 MB/s is ~107 ms of transfer; must dominate.
  EXPECT_GT(to_seconds(big_lat), 0.08);
}

TEST(HddTest, SequentialFasterThanRandom) {
  const HddConfig cfg = small_config();
  // 64 sequential 64 KiB reads.
  HddDevice seq(cfg, 7);
  SimTime t = 0;
  for (int i = 0; i < 64; ++i) {
    t = seq.submit({IoKind::kRead, static_cast<uint64_t>(i) * 64 * kKiB,
                    64 * kKiB},
                   t)
            .finish;
  }
  const SimTime seq_total = t;
  // 64 random 64 KiB reads.
  HddDevice rnd(cfg, 7);
  Rng rng(5);
  t = 0;
  for (int i = 0; i < 64; ++i) {
    const uint64_t off = rng.uniform(cfg.capacity_bytes / kMiB) * kMiB;
    t = rnd.submit({IoKind::kRead, off, 64 * kKiB}, t).finish;
  }
  EXPECT_LT(seq_total * 3, t);  // random pays seeks; sequential mostly not
}

TEST(HddTest, MeanRandomSetupNearConfigured) {
  const HddConfig cfg = small_config();
  HddDevice dev(cfg, 11);
  Rng rng(13);
  const int n = 400;
  SimTime t = 0;
  SimTime busy_sum = 0;
  for (int i = 0; i < n; ++i) {
    const uint64_t off = rng.uniform(cfg.capacity_bytes / 4096) * 4096;
    const IoCompletion c = dev.submit({IoKind::kRead, off, 4096}, t);
    busy_sum += c.finish - c.start;
    t = c.finish;
  }
  const double mean_s = to_seconds(busy_sum) / n;
  // Expected setup from the config (a 4 KiB transfer adds only ~27 us).
  EXPECT_NEAR(mean_s, cfg.expected_setup_s(), cfg.expected_setup_s() * 0.15);
}

TEST(HddTest, StatsAccounting) {
  HddDevice dev(small_config());
  dev.submit({IoKind::kRead, 0, 4096}, 0);
  dev.submit({IoKind::kWrite, 8192, 1024}, 0);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.stats().bytes_read, 4096u);
  EXPECT_EQ(dev.stats().bytes_written, 1024u);
  EXPECT_GT(dev.stats().busy_time, 0u);
  dev.clear_stats();
  EXPECT_EQ(dev.stats().reads, 0u);
}

TEST(HddTest, PayloadRoundTripWithTiming) {
  HddDevice dev(small_config());
  std::vector<uint8_t> out(64, 0);
  std::vector<uint8_t> in(64);
  for (size_t i = 0; i < in.size(); ++i) in[i] = static_cast<uint8_t>(i);
  SimTime t = dev.write(4096, in, 0).finish;
  t = dev.read(4096, out, t).finish;
  EXPECT_EQ(in, out);
  EXPECT_GT(t, 0u);
}

TEST(HddDeathTest, OutOfRangeIo) {
  HddDevice dev(small_config());
  EXPECT_DEATH(dev.submit({IoKind::kRead, 8ULL * kGiB - 10, 4096}, 0),
               "past device end");
  EXPECT_DEATH(dev.submit({IoKind::kRead, 0, 0}, 0), "zero-length");
}

TEST(HddTest, IoContextAdvancesClock) {
  HddDevice dev(small_config());
  IoContext io(dev);
  EXPECT_EQ(io.now(), 0u);
  std::vector<uint8_t> buf(4096);
  io.read(0, buf);
  const SimTime after_first = io.now();
  EXPECT_GT(after_first, 0u);
  io.touch_read(kGiB, 1 * kMiB);
  EXPECT_GT(io.now(), after_first);
}

}  // namespace
}  // namespace damkit::sim
