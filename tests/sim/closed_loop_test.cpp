#include "sim/closed_loop.h"

#include <gtest/gtest.h>

#include "sim/hdd.h"
#include "sim/ssd.h"
#include "util/bytes.h"

namespace damkit::sim {
namespace {

SsdConfig ssd_config(int channels, int dies_per_channel) {
  SsdConfig cfg;
  cfg.capacity_bytes = 8ULL * kGiB;
  cfg.channels = channels;
  cfg.dies_per_channel = dies_per_channel;
  cfg.page_bytes = 4096;
  cfg.stripe_bytes = 64 * kKiB;
  cfg.page_read_s = 50e-6;
  cfg.bus_s_per_page = 2e-6;
  cfg.command_overhead_s = 10e-6;
  return cfg;
}

TEST(ClosedLoopTest, CompletesAllIos) {
  SsdDevice dev(ssd_config(2, 2));
  ClosedLoopConfig cl;
  cl.clients = 4;
  cl.ios_per_client = 100;
  cl.io_bytes = 64 * kKiB;
  const ClosedLoopResult r = run_closed_loop(dev, cl);
  EXPECT_EQ(r.total_ios, 400u);
  EXPECT_EQ(r.total_bytes, 400u * 64 * kKiB);
  EXPECT_EQ(r.latency.count(), 400u);
  EXPECT_GT(r.makespan, 0u);
}

TEST(ClosedLoopTest, DeterministicForSeed) {
  ClosedLoopConfig cl;
  cl.clients = 3;
  cl.ios_per_client = 50;
  cl.io_bytes = 64 * kKiB;
  cl.seed = 77;
  SsdDevice a(ssd_config(2, 2));
  SsdDevice b(ssd_config(2, 2));
  EXPECT_EQ(run_closed_loop(a, cl).makespan, run_closed_loop(b, cl).makespan);
}

TEST(ClosedLoopTest, ParallelClientsBeatSerialOnSsd) {
  ClosedLoopConfig cl;
  cl.io_bytes = 64 * kKiB;
  cl.ios_per_client = 200;
  cl.clients = 1;
  SsdDevice one(ssd_config(2, 2));
  const double t1 = to_seconds(run_closed_loop(one, cl).makespan);
  cl.clients = 4;
  cl.ios_per_client = 50;  // same total work
  SsdDevice four(ssd_config(2, 2));
  const double t4 = to_seconds(run_closed_loop(four, cl).makespan);
  EXPECT_LT(t4, t1 * 0.5);  // 4 dies absorb 4 clients
}

TEST(ClosedLoopTest, BeyondParallelismScalesLinearly) {
  // Same per-client work; time should grow ~linearly once p >> P (=4).
  ClosedLoopConfig cl;
  cl.io_bytes = 64 * kKiB;
  cl.ios_per_client = 64;
  cl.clients = 16;
  SsdDevice d16(ssd_config(2, 2));
  const double t16 = to_seconds(run_closed_loop(d16, cl).makespan);
  cl.clients = 32;
  SsdDevice d32(ssd_config(2, 2));
  const double t32 = to_seconds(run_closed_loop(d32, cl).makespan);
  EXPECT_NEAR(t32 / t16, 2.0, 0.3);
}

TEST(ClosedLoopTest, CustomOffsetGeneratorSequential) {
  HddConfig hdd;
  hdd.capacity_bytes = 8ULL * kGiB;
  HddDevice dev(hdd, 3);
  ClosedLoopConfig cl;
  cl.clients = 1;
  cl.ios_per_client = 64;
  cl.io_bytes = kMiB;
  uint64_t next = 0;
  const ClosedLoopResult seq =
      run_closed_loop(dev, cl, [&next, &cl](int, Rng&) {
        const uint64_t off = next;
        next += cl.io_bytes;
        return off;
      });
  HddDevice dev2(hdd, 3);
  const ClosedLoopResult rnd = run_closed_loop(dev2, cl);
  EXPECT_LT(seq.makespan, rnd.makespan);  // sequential avoids seeks
}

TEST(ClosedLoopTest, ThroughputConsistentWithMakespan) {
  SsdDevice dev(ssd_config(2, 2));
  ClosedLoopConfig cl;
  cl.clients = 2;
  cl.ios_per_client = 100;
  cl.io_bytes = 64 * kKiB;
  const ClosedLoopResult r = run_closed_loop(dev, cl);
  EXPECT_NEAR(r.throughput_bps(),
              static_cast<double>(r.total_bytes) / to_seconds(r.makespan),
              1.0);
}

TEST(ClosedLoopDeathTest, RejectsBadConfig) {
  SsdDevice dev(ssd_config(1, 1));
  ClosedLoopConfig cl;
  cl.clients = 0;
  EXPECT_DEATH(run_closed_loop(dev, cl), "");
}

}  // namespace
}  // namespace damkit::sim
