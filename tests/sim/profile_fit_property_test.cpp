// Parameterized property sweep: *every* calibrated device profile must be
// well-described by its model — the paper's central empirical claim, as a
// regression test over the whole profile registry.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "sim/profiles.h"
#include "util/bytes.h"

namespace damkit::sim {
namespace {

// ---------------------------------------------------------------------------
// HDD profiles: the affine model fits with high R² and recovers the
// calibration targets.
// ---------------------------------------------------------------------------

class HddProfileFit : public testing::TestWithParam<size_t> {};

TEST_P(HddProfileFit, AffineModelFitsWell) {
  const HddConfig hdd = paper_hdd_profiles()[GetParam()];
  harness::AffineExperimentConfig cfg;
  cfg.reads_per_size = 32;
  const auto res = run_affine_experiment(hdd, cfg);
  EXPECT_GT(res.fit.r2, 0.99) << hdd.name;
  EXPECT_NEAR(res.fit.s, hdd.expected_setup_s(),
              hdd.expected_setup_s() * 0.15)
      << hdd.name;
  EXPECT_NEAR(res.fit.t_per_byte, hdd.expected_transfer_s_per_byte(),
              hdd.expected_transfer_s_per_byte() * 0.1)
      << hdd.name;
  EXPECT_GT(res.fit.alpha, 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllPaperDisks, HddProfileFit,
                         testing::Values(0u, 1u, 2u, 3u, 4u),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return "disk" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// SSD profiles: the PDAM's flat-then-linear shape holds everywhere.
// ---------------------------------------------------------------------------

class SsdProfileFit : public testing::TestWithParam<size_t> {};

TEST_P(SsdProfileFit, PdamShapeHolds) {
  const SsdConfig ssd = paper_ssd_profiles()[GetParam()];
  harness::PdamExperimentConfig cfg;
  cfg.bytes_per_thread = 64ULL * kMiB;
  const auto res = run_pdam_experiment(ssd, cfg);
  EXPECT_GT(res.fit.r2, 0.98) << ssd.name;
  // Flat-ish region start: doubling 1 -> 2 threads costs < 25%.
  EXPECT_LT(res.samples[1].seconds / res.samples[0].seconds, 1.25)
      << ssd.name;
  // Saturated region: 32 -> 64 threads doubles time (±15%).
  const double tail = res.samples[6].seconds / res.samples[5].seconds;
  EXPECT_NEAR(tail, 2.0, 0.3) << ssd.name;
  // Fitted P within the physically sensible band.
  EXPECT_GT(res.fit.p, 1.5) << ssd.name;
  EXPECT_LT(res.fit.p, 10.0) << ssd.name;
  // Saturated throughput within 10% of the configured link.
  EXPECT_NEAR(res.fit.saturated_mbps, ssd.saturated_read_bps() / 1e6,
              ssd.saturated_read_bps() / 1e6 * 0.1)
      << ssd.name;
}

INSTANTIATE_TEST_SUITE_P(AllPaperSsds, SsdProfileFit,
                         testing::Values(0u, 1u, 2u, 3u),
                         [](const testing::TestParamInfo<size_t>& info) {
                           return "ssd" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace damkit::sim
