#include "sim/ssd.h"

#include <gtest/gtest.h>

#include "sim/closed_loop.h"
#include "util/bytes.h"

namespace damkit::sim {
namespace {

SsdConfig small_config() {
  SsdConfig cfg;
  cfg.name = "test-ssd";
  cfg.capacity_bytes = 4ULL * kGiB;
  cfg.channels = 2;
  cfg.dies_per_channel = 2;
  cfg.page_bytes = 4096;
  cfg.stripe_bytes = 64 * kKiB;
  cfg.page_read_s = 50e-6;
  cfg.page_write_s = 200e-6;
  cfg.bus_s_per_page = 2e-6;
  cfg.command_overhead_s = 10e-6;
  return cfg;
}

TEST(SsdTest, StripeMappingRoundRobinByStripe) {
  SsdDevice dev(small_config());
  EXPECT_EQ(dev.die_of(0), 0);
  EXPECT_EQ(dev.die_of(64 * kKiB), 1);
  EXPECT_EQ(dev.die_of(2 * 64 * kKiB), 2);
  EXPECT_EQ(dev.die_of(3 * 64 * kKiB), 3);
  EXPECT_EQ(dev.die_of(4 * 64 * kKiB), 0);  // wraps at total dies
  EXPECT_EQ(dev.die_of(64 * kKiB - 1), 0);  // within a stripe, same die
}

TEST(SsdTest, ReadLatencyMatchesPageArithmetic) {
  const SsdConfig cfg = small_config();
  SsdDevice dev(cfg);
  const IoCompletion c = dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  // 16 pages serially on one die + final bus transfer + overhead.
  const double expected =
      cfg.command_overhead_s + 16 * cfg.page_read_s + cfg.bus_s_per_page;
  EXPECT_NEAR(to_seconds(c.finish), expected, expected * 0.05);
}

TEST(SsdTest, WritesSlowerThanReads) {
  SsdDevice dev(small_config());
  const IoCompletion r = dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  SsdDevice dev2(small_config());
  const IoCompletion w = dev2.submit({IoKind::kWrite, 0, 64 * kKiB}, 0);
  EXPECT_GT(w.finish - w.start, r.finish - r.start);
}

TEST(SsdTest, DisjointDiesOverlap) {
  SsdDevice dev(small_config());
  // Two IOs on different dies at the same time: both finish in ~1 IO time.
  const IoCompletion a = dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  const IoCompletion b =
      dev.submit({IoKind::kRead, 64 * kKiB, 64 * kKiB}, 0);
  const SimTime solo = a.finish;
  EXPECT_LT(b.finish, solo + solo / 4);  // near-perfect overlap
}

TEST(SsdTest, SameDieConflictsSerialize) {
  SsdDevice dev(small_config());
  const IoCompletion a = dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  // Same stripe → same die → must wait for the first to clear the die.
  const IoCompletion b =
      dev.submit({IoKind::kRead, 4 * 64 * kKiB, 64 * kKiB}, 0);
  EXPECT_GT(b.finish, a.finish + (a.finish - a.start) / 2);
}

TEST(SsdTest, LargeIoUsesInternalParallelism) {
  const SsdConfig cfg = small_config();
  SsdDevice dev(cfg);
  // 256 KiB spans 4 stripes = all 4 dies in parallel.
  const IoCompletion big = dev.submit({IoKind::kRead, 0, 256 * kKiB}, 0);
  SsdDevice dev2(cfg);
  const IoCompletion one = dev2.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  const double speedup = to_seconds(one.finish - one.start) * 4.0 /
                         to_seconds(big.finish - big.start);
  EXPECT_GT(speedup, 3.0);  // near 4x from striping
}

TEST(SsdTest, SaturatedBandwidthFormula) {
  const SsdConfig cfg = small_config();
  // 4 dies × 4096 B / 50 us = 327.68 MB/s; bus: 2 ch × 4096/2us = 4 GB/s.
  EXPECT_NEAR(cfg.saturated_read_bps(), 4 * 4096 / 50e-6, 1.0);
  EXPECT_GT(cfg.qd1_read_bps(64 * kKiB), 0.0);
  EXPECT_LT(cfg.qd1_read_bps(64 * kKiB), cfg.saturated_read_bps());
}

TEST(SsdTest, Qd1ClosedFormMatchesSimulatedBandwidth) {
  // The acceptance bar for the qd1_read_bps fix: the closed form must
  // agree with a simulated single-client closed loop within 5% across the
  // whole io_bytes range, for both striping modes. The old form priced
  // only the first stripe's pages — multi-stripe IOs made it wildly
  // optimistic under round-robin and blind to die collisions when hashed.
  for (const bool hashed : {false, true}) {
    SsdConfig cfg = small_config();
    cfg.hashed_striping = hashed;
    for (const uint64_t io_bytes :
         {4 * kKiB, 16 * kKiB, 64 * kKiB, 256 * kKiB, 1024 * kKiB}) {
      SsdDevice dev(cfg);
      ClosedLoopConfig loop;
      loop.clients = 1;
      loop.ios_per_client = 400;
      loop.io_bytes = io_bytes;
      loop.seed = 7;
      const ClosedLoopResult r = run_closed_loop(dev, loop);
      const double closed_form = cfg.qd1_read_bps(io_bytes);
      EXPECT_NEAR(r.throughput_bps(), closed_form, closed_form * 0.05)
          << (hashed ? "hashed" : "round-robin") << " io_bytes=" << io_bytes;
    }
  }
}

TEST(SsdTest, DieWaitCountsOnlyCrossRequestQueueing) {
  SsdDevice dev(small_config());
  // Two single-stripe reads on the same die, both submitted at t = 0: the
  // second queues behind the first — genuine cross-request contention.
  dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  dev.submit({IoKind::kRead, 4 * 64 * kKiB, 64 * kKiB}, 0);
  EXPECT_GT(dev.die_wait_seconds(), 0.0);
  EXPECT_EQ(dev.intra_io_wait_seconds(), 0.0);
}

TEST(SsdTest, IntraIoSerializationIsNotDieWait) {
  SsdConfig cfg = small_config();
  cfg.channels = 1;
  cfg.dies_per_channel = 1;  // every stripe lands on the single die
  SsdDevice dev(cfg);
  // One two-stripe read on an idle device: the second stripe queues
  // behind the first, but that backlog is the request's own fan-out lost
  // to a die collision — self-serialization, not contention. The old
  // accounting charged it to die_wait, inflating the contention signal
  // for every multi-stripe IO.
  dev.submit({IoKind::kRead, 0, 2 * 64 * kKiB}, 0);
  EXPECT_EQ(dev.die_wait_seconds(), 0.0);
  EXPECT_GT(dev.intra_io_wait_seconds(), 0.0);
}

TEST(SsdTest, StatsAccounting) {
  SsdDevice dev(small_config());
  dev.submit({IoKind::kRead, 0, 4096}, 0);
  dev.submit({IoKind::kWrite, 0, 8192}, 0);
  EXPECT_EQ(dev.stats().reads, 1u);
  EXPECT_EQ(dev.stats().writes, 1u);
  EXPECT_EQ(dev.stats().bytes_read, 4096u);
  EXPECT_EQ(dev.stats().bytes_written, 8192u);
}

TEST(SsdTest, HashedStripingSpreadsStripes) {
  SsdConfig cfg = small_config();
  cfg.hashed_striping = true;
  cfg.channels = 4;
  cfg.dies_per_channel = 8;
  SsdDevice dev(cfg);
  // Consecutive stripes land on effectively random dies: all 32 dies hit
  // within a few hundred stripes, and no die takes a huge share.
  std::vector<int> counts(32, 0);
  for (uint64_t s = 0; s < 1024; ++s) {
    ++counts[static_cast<size_t>(dev.die_of(s * cfg.stripe_bytes))];
  }
  for (int c : counts) {
    EXPECT_GT(c, 0);
    EXPECT_LT(c, 1024 / 32 * 3);
  }
  // Mapping is stable per offset.
  EXPECT_EQ(dev.die_of(12345), dev.die_of(12345));
}

TEST(SsdTest, LinkStageSerializesPayloads) {
  SsdConfig cfg = small_config();
  cfg.channels = 4;
  cfg.dies_per_channel = 8;
  cfg.link_bps = 500e6;
  SsdDevice dev(cfg);
  // Two IOs on disjoint dies still queue on the shared link.
  const IoCompletion a = dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  const IoCompletion b =
      dev.submit({IoKind::kRead, 64 * kKiB, 64 * kKiB}, 0);
  const SimTime link_occupancy = from_seconds(64.0 * 1024 / 500e6);
  EXPECT_GE(b.finish, a.finish + link_occupancy);
  // And the configured link bounds the saturated bandwidth.
  EXPECT_LE(cfg.saturated_read_bps(), 500e6 + 1.0);
}

TEST(SsdTest, LinkDisabledByDefault) {
  const SsdConfig cfg = small_config();
  EXPECT_EQ(cfg.link_bps, 0.0);
  // With the link off, disjoint-die IOs overlap nearly perfectly (the
  // DisjointDiesOverlap test above); just confirm config plumbing here.
  SsdDevice dev(cfg);
  const IoCompletion a = dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  const IoCompletion b =
      dev.submit({IoKind::kRead, 64 * kKiB, 64 * kKiB}, 0);
  EXPECT_LT(b.finish, a.finish + (a.finish - a.start) / 2);
}

TEST(SsdTest, TrimDropsPayloadWithoutTiming) {
  SsdDevice dev(small_config());
  std::vector<uint8_t> data(64 * kKiB, 0x7e);
  dev.write(0, data, 0);
  EXPECT_GT(dev.resident_host_bytes(), 0u);
  dev.trim(0, 64 * kKiB);
  EXPECT_EQ(dev.resident_host_bytes(), 0u);
  std::vector<uint8_t> back(16);
  dev.read_bytes(0, back);
  for (uint8_t v : back) EXPECT_EQ(v, 0);
}

TEST(SsdDeathTest, BoundsChecked) {
  SsdDevice dev(small_config());
  EXPECT_DEATH(dev.submit({IoKind::kRead, 4ULL * kGiB, 4096}, 0),
               "past device end");
}

}  // namespace
}  // namespace damkit::sim
