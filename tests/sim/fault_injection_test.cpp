#include "sim/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"

namespace damkit::sim {
namespace {

constexpr uint64_t kIo = 4096;

FaultConfig all_faults(uint64_t seed, double rate) {
  FaultConfig cfg;
  cfg.seed = seed;
  cfg.read_error_rate = rate;
  cfg.write_error_rate = rate;
  cfg.torn_write_rate = rate / 2.0;
  cfg.latency_spike_rate = rate;
  return cfg;
}

// One mixed checked read/write pass; returns the per-request status codes.
std::vector<StatusCode> run_schedule(FaultInjectingDevice& dev, size_t ops) {
  IoContext io(dev);
  std::vector<uint8_t> buf(kIo, 0xab);
  std::vector<StatusCode> codes;
  codes.reserve(ops);
  for (size_t i = 0; i < ops; ++i) {
    const uint64_t off = (i % 64) * kIo;
    const Status s = (i % 2 == 0) ? io.write_checked(off, buf)
                                  : io.read_checked(off, buf);
    codes.push_back(s.code());
  }
  return codes;
}

TEST(FaultInjectionTest, SameSeedReplaysSameSchedule) {
  SsdDevice inner_a(testbed_ssd_profile());
  SsdDevice inner_b(testbed_ssd_profile());
  FaultInjectingDevice a(inner_a, all_faults(1234, 0.2));
  FaultInjectingDevice b(inner_b, all_faults(1234, 0.2));
  const auto codes_a = run_schedule(a, 400);
  const auto codes_b = run_schedule(b, 400);
  EXPECT_EQ(codes_a, codes_b);
  EXPECT_EQ(a.fault_stats().injected_read_errors,
            b.fault_stats().injected_read_errors);
  EXPECT_EQ(a.fault_stats().injected_write_errors,
            b.fault_stats().injected_write_errors);
  EXPECT_EQ(a.fault_stats().injected_torn_writes,
            b.fault_stats().injected_torn_writes);
  EXPECT_EQ(a.fault_stats().injected_latency_spikes,
            b.fault_stats().injected_latency_spikes);
  EXPECT_GT(a.fault_stats().injected_errors(), 0u);
}

TEST(FaultInjectionTest, DifferentSeedsDiverge) {
  SsdDevice inner_a(testbed_ssd_profile());
  SsdDevice inner_b(testbed_ssd_profile());
  FaultInjectingDevice a(inner_a, all_faults(1, 0.2));
  FaultInjectingDevice b(inner_b, all_faults(2, 0.2));
  EXPECT_NE(run_schedule(a, 400), run_schedule(b, 400));
}

TEST(FaultInjectionTest, ZeroRatesAreTimingTransparent) {
  // A wrapper with every rate at zero must charge exactly the inner
  // model's time and never fail — code that has not opted into faults
  // keeps its previous behavior bit-for-bit.
  SsdDevice plain(testbed_ssd_profile());
  SsdDevice inner(testbed_ssd_profile());
  FaultInjectingDevice wrapped(inner, FaultConfig{});
  IoContext plain_io(plain);
  IoContext wrapped_io(wrapped);
  std::vector<uint8_t> buf(kIo);
  for (size_t i = 0; i < 100; ++i) {
    const uint64_t off = (i * 7 % 64) * kIo;
    plain_io.write(off, buf);
    ASSERT_TRUE(wrapped_io.write_checked(off, buf).ok());
    plain_io.read(off, buf);
    ASSERT_TRUE(wrapped_io.read_checked(off, buf).ok());
  }
  EXPECT_EQ(plain_io.now(), wrapped_io.now());
}

TEST(FaultInjectionTest, TransientReadLeavesPayloadUntouched) {
  SsdDevice inner(testbed_ssd_profile());
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.read_error_rate = 1.0;  // every checked read fails
  FaultInjectingDevice dev(inner, cfg);
  IoContext io(dev);

  std::vector<uint8_t> data(kIo, 0x5a);
  ASSERT_TRUE(io.write_checked(0, data).ok());

  std::vector<uint8_t> out(kIo, 0xee);
  const SimTime before = io.now();
  const Status s = io.read_checked(0, out);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  // Payload must not move on a faulted read...
  EXPECT_EQ(out, std::vector<uint8_t>(kIo, 0xee));
  // ...but the failed IO still occupied the device.
  EXPECT_GT(io.now(), before);
  EXPECT_EQ(dev.fault_stats().injected_read_errors, 1u);
}

TEST(FaultInjectionTest, TransientWriteLandsNothing) {
  SsdDevice inner(testbed_ssd_profile());
  FaultConfig cfg;
  cfg.seed = 7;
  cfg.write_error_rate = 1.0;
  FaultInjectingDevice dev(inner, cfg);
  IoContext io(dev);

  std::vector<uint8_t> data(kIo, 0x5a);
  EXPECT_EQ(io.write_checked(0, data).code(), StatusCode::kUnavailable);

  std::vector<uint8_t> out(kIo, 0xee);
  dev.read_bytes(0, out);  // payload-only: an unwritten range reads zero
  EXPECT_EQ(out, std::vector<uint8_t>(kIo, 0));
}

TEST(FaultInjectionTest, TornWritePersistsStrictPrefix) {
  SsdDevice inner(testbed_ssd_profile());
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.torn_write_rate = 1.0;  // every checked write tears
  FaultInjectingDevice dev(inner, cfg);
  IoContext io(dev);

  std::vector<uint8_t> data(kIo);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 31 + 1);  // never zero at index 0
  }
  EXPECT_EQ(io.write_checked(0, data).code(), StatusCode::kCorruption);

  std::vector<uint8_t> out(kIo, 0xee);
  dev.read_bytes(0, out);
  // Some strict prefix of the payload landed; everything after it is
  // still unwritten (zero). Find the boundary and check both halves.
  size_t torn = 0;
  while (torn < out.size() && out[torn] == data[torn]) ++torn;
  EXPECT_LT(torn, data.size());  // strict: the full write never lands
  for (size_t i = torn; i < out.size(); ++i) {
    ASSERT_EQ(out[i], 0u) << "byte " << i << " past the torn prefix landed";
  }
  EXPECT_EQ(dev.fault_stats().injected_torn_writes, 1u);
}

TEST(FaultInjectionTest, LatencySpikesDelayCompletionOnly) {
  SsdDevice plain(testbed_ssd_profile());
  SsdDevice inner(testbed_ssd_profile());
  FaultConfig cfg;
  cfg.seed = 5;
  cfg.latency_spike_rate = 1.0;  // every IO spikes
  cfg.latency_spike_ns = 3 * kNsPerMs;
  FaultInjectingDevice dev(inner, cfg);
  IoContext plain_io(plain);
  IoContext io(dev);

  std::vector<uint8_t> buf(kIo);
  plain_io.write(0, buf);
  ASSERT_TRUE(io.write_checked(0, buf).ok());  // a spike is not an error
  EXPECT_EQ(io.now(), plain_io.now() + cfg.latency_spike_ns);
  EXPECT_EQ(dev.fault_stats().injected_latency_spikes, 1u);

  std::vector<uint8_t> out(kIo);
  dev.read_bytes(0, out);
  EXPECT_EQ(out, buf);  // the spiked write still landed in full
}

TEST(FaultInjectionTest, BatchReportsPerRequestVerdicts) {
  SsdDevice inner(testbed_ssd_profile());
  FaultConfig cfg;
  cfg.seed = 11;
  cfg.read_error_rate = 0.5;
  FaultInjectingDevice dev(inner, cfg);
  IoContext io(dev);

  std::vector<IoRequest> reqs;
  for (uint64_t i = 0; i < 64; ++i) {
    reqs.push_back({IoKind::kRead, i * kIo, kIo});
  }
  std::vector<IoCompletion> completions;
  std::vector<Status> per_io;
  ASSERT_TRUE(io.submit_batch_checked(reqs, &completions, &per_io).ok());
  ASSERT_EQ(completions.size(), reqs.size());
  ASSERT_EQ(per_io.size(), reqs.size());
  size_t failed = 0;
  for (const Status& s : per_io) {
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kUnavailable);
      ++failed;
    }
  }
  // At rate 0.5 over 64 draws, all-pass and all-fail are both ~1e-19.
  EXPECT_GT(failed, 0u);
  EXPECT_LT(failed, reqs.size());
  EXPECT_EQ(dev.fault_stats().injected_read_errors, failed);
  // Completions were computed for every request, faulted or not: the
  // clock sits at the batch-wide max finish.
  SimTime max_finish = 0;
  for (const IoCompletion& c : completions) {
    max_finish = std::max(max_finish, c.finish);
  }
  EXPECT_EQ(io.now(), max_finish);
}

TEST(FaultInjectionTest, LegacyPathsNeverFault) {
  SsdDevice inner(testbed_ssd_profile());
  FaultInjectingDevice dev(inner, all_faults(3, 1.0));
  IoContext io(dev);
  // Unchecked read/write/submit must ignore error draws entirely (they
  // predate Status plumbing); only spikes apply, as slow IO is not error.
  std::vector<uint8_t> data(kIo, 0x77);
  io.write(0, data);
  std::vector<uint8_t> out(kIo);
  io.read(0, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(dev.fault_stats().injected_errors(), 0u);
}

TEST(FaultInjectionTest, ExportsFaultCounters) {
  SsdDevice inner(testbed_ssd_profile());
  FaultInjectingDevice dev(inner, all_faults(21, 0.3));
  run_schedule(dev, 200);
  stats::MetricsRegistry reg;
  dev.export_metrics(reg, "dev.");
  EXPECT_EQ(reg.counter("dev.faults.checked_reads"), 100u);
  EXPECT_EQ(reg.counter("dev.faults.checked_writes"), 100u);
  EXPECT_EQ(reg.counter("dev.faults.injected_read_errors"),
            dev.fault_stats().injected_read_errors);
  EXPECT_EQ(reg.counter("dev.faults.injected_write_errors"),
            dev.fault_stats().injected_write_errors);
  EXPECT_EQ(reg.counter("dev.faults.injected_torn_writes"),
            dev.fault_stats().injected_torn_writes);
  EXPECT_EQ(reg.counter("dev.faults.injected_latency_spikes"),
            dev.fault_stats().injected_latency_spikes);
  EXPECT_GT(dev.fault_stats().injected_errors(), 0u);
}

TEST(FaultInjectionTest, CrashPointFiresAtExactlyTheArmedIo) {
  SsdDevice inner(testbed_ssd_profile());
  FaultInjectingDevice dev(inner, FaultConfig{});  // zero rates: crash only
  IoContext io(dev);
  std::vector<uint8_t> buf(kIo, 0x5a);
  dev.set_crash_at(4);
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(io.write_checked((i - 1) * kIo, buf).ok()) << i;
  }
  EXPECT_FALSE(dev.crashed());
  // The 4th checked IO is a write: it dies kCorruption with a torn prefix.
  const Status s = io.write_checked(3 * kIo, buf);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_TRUE(dev.crashed());
  EXPECT_EQ(dev.fault_stats().crashes, 1u);
  // Every later checked IO is refused until reboot, reads included.
  EXPECT_EQ(io.read_checked(0, buf).code(), StatusCode::kUnavailable);
  EXPECT_EQ(io.write_checked(0, buf).code(), StatusCode::kUnavailable);
  EXPECT_EQ(dev.fault_stats().post_crash_rejections, 2u);

  dev.reboot();
  EXPECT_FALSE(dev.crashed());
  EXPECT_TRUE(io.write_checked(3 * kIo, buf).ok());
  // The first three writes survived the crash on the media.
  std::vector<uint8_t> out(kIo);
  dev.read_bytes(0, out);
  EXPECT_EQ(out, buf);
}

TEST(FaultInjectionTest, CrashOnReadIsUnavailableAndLeavesMediaIntact) {
  SsdDevice inner(testbed_ssd_profile());
  FaultInjectingDevice dev(inner, FaultConfig{});
  IoContext io(dev);
  std::vector<uint8_t> buf(kIo, 0x17);
  ASSERT_TRUE(io.write_checked(0, buf).ok());
  dev.crash_after(0);
  std::vector<uint8_t> out(kIo, 0);
  const Status s = io.read_checked(0, out);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(dev.crashed());
  dev.reboot();
  ASSERT_TRUE(io.read_checked(0, out).ok());
  EXPECT_EQ(out, buf);
}

TEST(FaultInjectionTest, CrashTornWriteIsDeterministicPerSeed) {
  const auto crashed_media = [](uint64_t seed) {
    SsdDevice inner(testbed_ssd_profile());
    FaultConfig cfg;
    cfg.seed = seed;
    FaultInjectingDevice dev(inner, cfg);
    IoContext io(dev);
    std::vector<uint8_t> ones(kIo, 0xFF);
    dev.set_crash_at(1);
    EXPECT_FALSE(io.write_checked(0, ones).ok());
    std::vector<uint8_t> media(kIo);
    dev.read_bytes(0, media);
    return media;
  };
  EXPECT_EQ(crashed_media(42), crashed_media(42));
  // The torn prefix is a STRICT prefix: some tail bytes never land.
  const std::vector<uint8_t> media = crashed_media(42);
  size_t landed = 0;
  while (landed < media.size() && media[landed] == 0xFF) ++landed;
  EXPECT_LT(landed, media.size());
  for (size_t i = landed; i < media.size(); ++i) {
    EXPECT_EQ(media[i], 0u) << i;
  }
}

TEST(FaultInjectionTest, ArmingACrashDoesNotPerturbFaultSchedules) {
  // The crash check consumes no randomness: the probabilistic fault
  // pattern before the crash point must be identical with and without an
  // armed crash.
  SsdDevice inner_a(testbed_ssd_profile());
  SsdDevice inner_b(testbed_ssd_profile());
  FaultInjectingDevice a(inner_a, all_faults(77, 0.25));
  FaultInjectingDevice b(inner_b, all_faults(77, 0.25));
  b.set_crash_at(151);
  const auto codes_a = run_schedule(a, 150);
  const auto codes_b = run_schedule(b, 150);
  EXPECT_EQ(codes_a, codes_b);
  EXPECT_FALSE(b.crashed());
}

TEST(FaultInjectionTest, ExportsCrashCounters) {
  SsdDevice inner(testbed_ssd_profile());
  FaultInjectingDevice dev(inner, FaultConfig{});
  IoContext io(dev);
  std::vector<uint8_t> buf(kIo);
  dev.crash_after(0);
  EXPECT_FALSE(io.write_checked(0, buf).ok());
  EXPECT_FALSE(io.read_checked(0, buf).ok());
  stats::MetricsRegistry reg;
  dev.export_metrics(reg, "dev.");
  EXPECT_EQ(reg.counter("dev.faults.crashes"), 1u);
  EXPECT_EQ(reg.counter("dev.faults.post_crash_rejections"), 1u);
}

TEST(FaultInjectionDeathTest, RejectsCrashPointInThePast) {
  SsdDevice inner(testbed_ssd_profile());
  FaultInjectingDevice dev(inner, FaultConfig{});
  IoContext io(dev);
  std::vector<uint8_t> buf(kIo);
  ASSERT_TRUE(io.write_checked(0, buf).ok());
  EXPECT_DEATH(dev.set_crash_at(1), "crash");
}

TEST(FaultInjectionDeathTest, RejectsOutOfRangeRates) {
  SsdDevice inner(testbed_ssd_profile());
  FaultConfig cfg;
  cfg.read_error_rate = 1.5;
  EXPECT_DEATH(FaultInjectingDevice(inner, cfg), "read_error_rate");
}

}  // namespace
}  // namespace damkit::sim
