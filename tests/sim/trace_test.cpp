#include "sim/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "sim/hdd.h"
#include "sim/ssd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::sim {
namespace {

HddConfig disk_config() {
  HddConfig cfg;
  cfg.capacity_bytes = 4ULL * kGiB;
  return cfg;
}

TEST(TraceTest, RecordsServedIos) {
  HddDevice dev(disk_config(), 1);
  IoTrace trace;
  dev.set_trace(&trace);
  SimTime now = 0;
  now = dev.submit({IoKind::kRead, 0, 4096}, now).finish;
  now = dev.submit({IoKind::kWrite, 8192, 1024}, now).finish;
  dev.set_trace(nullptr);
  dev.submit({IoKind::kRead, 0, 4096}, now);  // not recorded
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.records()[0].kind, IoKind::kRead);
  EXPECT_EQ(trace.records()[1].kind, IoKind::kWrite);
  EXPECT_EQ(trace.records()[1].offset, 8192u);
  EXPECT_EQ(trace.records()[1].length, 1024u);
  EXPECT_GT(trace.records()[0].finish, trace.records()[0].start);
  // The submission clock is captured per record: the second IO was issued
  // at the first one's completion time.
  EXPECT_EQ(trace.records()[0].submit, 0u);
  EXPECT_EQ(trace.records()[1].submit, trace.records()[0].finish);
  EXPECT_LE(trace.records()[1].submit, trace.records()[1].start);
  EXPECT_EQ(trace.total_bytes(), 4096u + 1024);
}

TEST(TraceTest, BatchMembersShareSubmitTime) {
  SsdConfig cfg;
  cfg.capacity_bytes = 4ULL * kGiB;
  SsdDevice dev(cfg);
  IoTrace trace;
  dev.set_trace(&trace);
  const std::vector<IoRequest> reqs = {
      {IoKind::kRead, 0, 4096},
      {IoKind::kRead, 64 * kMiB, 4096},
      {IoKind::kRead, 128 * kMiB, 4096},
  };
  dev.submit_batch(reqs, /*now=*/500);
  ASSERT_EQ(trace.size(), 3u);
  for (const auto& r : trace.records()) EXPECT_EQ(r.submit, 500u);
}

TEST(TraceTest, SequentialFraction) {
  IoTrace trace;
  // Build synthetic records directly.
  HddDevice dev(disk_config(), 1);
  dev.set_trace(&trace);
  SimTime now = 0;
  for (int i = 0; i < 10; ++i) {
    now = dev.submit({IoKind::kRead, static_cast<uint64_t>(i) * 4096, 4096},
                     now)
              .finish;
  }
  EXPECT_DOUBLE_EQ(trace.sequential_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(trace.mean_seek_bytes(), 0.0);
  // One random jump out of 10 transitions.
  now = dev.submit({IoKind::kRead, 1 * kGiB, 4096}, now).finish;
  EXPECT_NEAR(trace.sequential_fraction(), 9.0 / 10.0, 1e-12);
  EXPECT_GT(trace.mean_seek_bytes(), 1e7);
}

TEST(TraceTest, CsvRoundTrip) {
  HddDevice dev(disk_config(), 1);
  IoTrace trace;
  dev.set_trace(&trace);
  Rng rng(3);
  SimTime now = 0;
  for (int i = 0; i < 50; ++i) {
    const uint64_t off = rng.uniform(1 << 18) * 4096;
    const IoKind kind = (i % 3 == 0) ? IoKind::kWrite : IoKind::kRead;
    now = dev.submit({kind, off, 4096}, now).finish;
  }
  const std::string csv = trace.to_csv();
  const IoTrace back = IoTrace::from_csv(csv);
  ASSERT_EQ(back.size(), trace.size());
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back.records()[i].kind, trace.records()[i].kind);
    EXPECT_EQ(back.records()[i].offset, trace.records()[i].offset);
    EXPECT_EQ(back.records()[i].length, trace.records()[i].length);
    EXPECT_EQ(back.records()[i].submit, trace.records()[i].submit);
    EXPECT_EQ(back.records()[i].start, trace.records()[i].start);
    EXPECT_EQ(back.records()[i].finish, trace.records()[i].finish);
  }
}

TEST(TraceTest, SaveLoadFile) {
  HddDevice dev(disk_config(), 1);
  IoTrace trace;
  dev.set_trace(&trace);
  dev.submit({IoKind::kRead, 4096, 4096}, 0);
  const std::string path = testing::TempDir() + "/damkit_trace_test.csv";
  ASSERT_TRUE(trace.save(path));
  const IoTrace back = IoTrace::load(path);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back.records()[0].offset, 4096u);
  std::remove(path.c_str());
}

TEST(TraceTest, ReplayOnDifferentDevice) {
  // Record a random-read workload on the HDD, replay on an SSD: the same
  // logical workload is far faster (no seeks) — cross-device what-if.
  HddDevice hdd(disk_config(), 1);
  IoTrace trace;
  hdd.set_trace(&trace);
  Rng rng(7);
  SimTime now = 0;
  for (int i = 0; i < 100; ++i) {
    const uint64_t off = rng.uniform(1 << 18) * 4096;
    now = hdd.submit({IoKind::kRead, off, 4096}, now).finish;
  }
  const SimTime hdd_time = now;

  SsdConfig ssd_cfg;
  ssd_cfg.capacity_bytes = 4ULL * kGiB;
  SsdDevice ssd(ssd_cfg);
  const SimTime ssd_time = replay_trace(ssd, trace);
  EXPECT_LT(ssd_time * 10, hdd_time);
  EXPECT_EQ(ssd.stats().reads, 100u);
}

TEST(TraceTest, ReplayPreservesOrderAndSizes) {
  HddDevice a(disk_config(), 1);
  IoTrace trace;
  a.set_trace(&trace);
  SimTime now = 0;
  now = a.submit({IoKind::kWrite, 0, 8192}, now).finish;
  now = a.submit({IoKind::kRead, 1 * kMiB, 4096}, now).finish;

  HddDevice b(disk_config(), 1);
  replay_trace(b, trace);
  EXPECT_EQ(b.stats().writes, 1u);
  EXPECT_EQ(b.stats().reads, 1u);
  EXPECT_EQ(b.stats().bytes_written, 8192u);
  EXPECT_EQ(b.stats().bytes_read, 4096u);
}

TEST(TraceDeathTest, MalformedCsvAborts) {
  EXPECT_DEATH(IoTrace::from_csv("kind,offset\nR,1,2\n"), "malformed");
  EXPECT_DEATH(IoTrace::from_csv("header\nX,1,2,3,4,5\n"), "bad trace kind");
  EXPECT_DEATH(IoTrace::load("/nonexistent/damkit.csv"), "cannot open");
}

TEST(TraceTest, EmptyTraceProperties) {
  IoTrace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_DOUBLE_EQ(trace.sequential_fraction(), 0.0);
  EXPECT_DOUBLE_EQ(trace.mean_seek_bytes(), 0.0);
  EXPECT_EQ(trace.total_bytes(), 0u);
  HddDevice dev(disk_config(), 1);
  EXPECT_EQ(replay_trace(dev, trace), 0u);
}

}  // namespace
}  // namespace damkit::sim
