#include "sim/memstore.h"

#include <gtest/gtest.h>

#include <vector>

namespace damkit::sim {
namespace {

std::vector<uint8_t> pattern(size_t n, uint8_t seed) {
  std::vector<uint8_t> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = static_cast<uint8_t>(seed + i * 7);
  return v;
}

TEST(MemStoreTest, UnwrittenReadsAsZero) {
  MemStore store(1 << 20);
  std::vector<uint8_t> buf(4096, 0xff);
  store.read(12345, buf);
  for (uint8_t b : buf) EXPECT_EQ(b, 0);
}

TEST(MemStoreTest, WriteReadRoundTrip) {
  MemStore store(1 << 20);
  const auto data = pattern(1000, 3);
  store.write(500, data);
  std::vector<uint8_t> buf(1000);
  store.read(500, buf);
  EXPECT_EQ(buf, data);
}

TEST(MemStoreTest, CrossPageBoundary) {
  MemStore store(1 << 22);
  // 64 KiB internal pages: straddle one boundary.
  const uint64_t off = 64 * 1024 - 100;
  const auto data = pattern(300, 9);
  store.write(off, data);
  std::vector<uint8_t> buf(300);
  store.read(off, buf);
  EXPECT_EQ(buf, data);
}

TEST(MemStoreTest, OverwritePartial) {
  MemStore store(1 << 20);
  store.write(0, pattern(100, 1));
  store.write(50, pattern(10, 200));
  std::vector<uint8_t> buf(100);
  store.read(0, buf);
  const auto first = pattern(100, 1);
  const auto mid = pattern(10, 200);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(buf[i], first[i]);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(buf[50 + i], mid[i]);
  for (size_t i = 60; i < 100; ++i) EXPECT_EQ(buf[i], first[i]);
}

TEST(MemStoreTest, SparseResidency) {
  MemStore store(1ULL << 40);  // 1 TiB nominal
  EXPECT_EQ(store.resident_bytes(), 0u);
  store.write(1ULL << 39, pattern(10, 5));
  EXPECT_EQ(store.resident_bytes(), 64u * 1024);  // one page
  store.write(0, pattern(10, 5));
  EXPECT_EQ(store.resident_bytes(), 2u * 64 * 1024);
}

TEST(MemStoreTest, ClearDropsData) {
  MemStore store(1 << 20);
  store.write(0, pattern(10, 1));
  store.clear();
  EXPECT_EQ(store.resident_bytes(), 0u);
  std::vector<uint8_t> buf(10, 0xff);
  store.read(0, buf);
  for (uint8_t b : buf) EXPECT_EQ(b, 0);
}

TEST(MemStoreDeathTest, OutOfBoundsRejected) {
  MemStore store(1024);
  std::vector<uint8_t> buf(100);
  EXPECT_DEATH(store.read(1000, buf), "past capacity");
  EXPECT_DEATH(store.write(1000, buf), "past capacity");
}

}  // namespace
}  // namespace damkit::sim
