// Tests for the NVMe-style multi-queue device: SQ/CQ routing, bounded
// queue depth, depth-dependent latency, polling-vs-interrupt completion
// cost, and seeded die-level GC interference. Timing only — payload
// semantics are pinned against SsdDevice by the cross-engine
// differential test.
#include "sim/mq_ssd.h"

#include <gtest/gtest.h>

#include <tuple>

#include "sim/closed_loop.h"
#include "util/bytes.h"

namespace damkit::sim {
namespace {

SsdConfig mq_config() {
  SsdConfig cfg;
  cfg.name = "test-mq-ssd";
  cfg.capacity_bytes = 4ULL * kGiB;
  cfg.channels = 2;
  cfg.dies_per_channel = 2;
  cfg.page_bytes = 4096;
  cfg.stripe_bytes = 64 * kKiB;
  cfg.page_read_s = 50e-6;
  cfg.page_write_s = 200e-6;
  cfg.bus_s_per_page = 2e-6;
  cfg.command_overhead_s = 10e-6;
  cfg.queue_pairs = 4;
  cfg.queue_depth = 32;
  cfg.completion_mode = CompletionMode::kPolling;
  cfg.inflight_penalty_s = 0.0;
  cfg.gc_interval_s = 0.0;
  return cfg;
}

TEST(MqSsdTest, RequestsRouteToQueuePairsModuloPairs) {
  MqSsdDevice dev(mq_config());
  for (uint32_t i = 0; i < 8; ++i) {
    dev.submit({IoKind::kRead, static_cast<uint64_t>(i) * 64 * kKiB,
                64 * kKiB, i},
               0);
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_EQ(dev.queue_ios(q), 2u) << "queue " << q;
  }
}

TEST(MqSsdTest, MatchesPlainSsdAtQueueDepthOnePlusCompletionCost) {
  // A single IO on an idle MQ device is the plain flash walk plus the CQ
  // reap cost — the MQ mechanisms are strictly additive.
  const SsdConfig cfg = mq_config();
  SsdDevice plain(cfg);
  MqSsdDevice mq(cfg);
  const IoCompletion a = plain.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  const IoCompletion b = mq.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  EXPECT_EQ(b.finish, a.finish + from_seconds(cfg.polling_completion_s));
}

TEST(MqSsdTest, BoundedQueueDepthStallsAdmission) {
  SsdConfig cfg = mq_config();
  cfg.queue_pairs = 1;
  cfg.queue_depth = 1;
  MqSsdDevice dev(cfg);
  const IoCompletion first = dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  // Same pair, still outstanding: the second command has no SQ slot and
  // stalls in host memory until the first completion frees one.
  const IoCompletion second =
      dev.submit({IoKind::kRead, 64 * kKiB, 64 * kKiB}, 0);
  EXPECT_GE(second.start, first.finish);
  EXPECT_EQ(dev.admission_stalls(), 1u);
  EXPECT_NEAR(dev.sq_wait_seconds(), to_seconds(first.finish), 1e-9);
}

TEST(MqSsdTest, DeepQueuesDoNotStallBelowTheBound) {
  SsdConfig cfg = mq_config();
  cfg.queue_pairs = 1;
  cfg.queue_depth = 8;
  MqSsdDevice dev(cfg);
  for (int i = 0; i < 8; ++i) {
    dev.submit({IoKind::kRead, static_cast<uint64_t>(i) * 64 * kKiB,
                64 * kKiB},
               0);
  }
  EXPECT_EQ(dev.admission_stalls(), 0u);
  EXPECT_EQ(dev.sq_wait_seconds(), 0.0);
  EXPECT_EQ(dev.max_inflight(), 8u);
}

TEST(MqSsdTest, InflightPenaltyGrowsFetchLatencyLinearly) {
  SsdConfig cfg = mq_config();
  cfg.inflight_penalty_s = 100e-6;
  MqSsdDevice dev(cfg);
  // Disjoint dies and distinct pairs: no flash or SQ interaction — the
  // only difference between the commands is the outstanding count at
  // admission. Service start shifts by exactly one penalty per prior
  // inflight command.
  const IoCompletion a =
      dev.submit({IoKind::kRead, 0, 64 * kKiB, 0}, 0);
  const IoCompletion b =
      dev.submit({IoKind::kRead, 64 * kKiB, 64 * kKiB, 1}, 0);
  const IoCompletion c =
      dev.submit({IoKind::kRead, 2 * 64 * kKiB, 64 * kKiB, 2}, 0);
  const SimTime penalty = from_seconds(cfg.inflight_penalty_s);
  EXPECT_EQ(b.start, a.start + penalty);
  EXPECT_EQ(c.start, a.start + 2 * penalty);
}

TEST(MqSsdTest, InterruptCompletionCostsMoreThanPolling) {
  SsdConfig polling = mq_config();
  polling.completion_mode = CompletionMode::kPolling;
  SsdConfig interrupt = mq_config();
  interrupt.completion_mode = CompletionMode::kInterrupt;
  MqSsdDevice poll_dev(polling);
  MqSsdDevice intr_dev(interrupt);
  const IoCompletion p = poll_dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  const IoCompletion i = intr_dev.submit({IoKind::kRead, 0, 64 * kKiB}, 0);
  EXPECT_EQ(i.finish - p.finish,
            from_seconds(interrupt.interrupt_completion_s -
                         polling.polling_completion_s));
}

TEST(MqSsdTest, GcBurstsStealDieTimeDeterministically) {
  SsdConfig cfg = mq_config();
  cfg.gc_interval_s = 500e-6;
  cfg.gc_burst_s = 100e-6;

  const auto run = [](const SsdConfig& c) {
    MqSsdDevice dev(c);
    ClosedLoopConfig loop;
    loop.clients = 1;
    loop.ios_per_client = 64;
    loop.io_bytes = 64 * kKiB;
    loop.seed = 13;
    const ClosedLoopResult r = run_closed_loop(dev, loop);
    return std::make_tuple(r.makespan, dev.gc_bursts(),
                           dev.gc_stolen_seconds());
  };

  const auto [makespan, bursts, stolen] = run(cfg);
  EXPECT_GT(bursts, 0u);
  EXPECT_NEAR(stolen, static_cast<double>(bursts) * cfg.gc_burst_s, 1e-9);

  // Seeded: an identical device replays the identical burst schedule.
  const auto [makespan2, bursts2, stolen2] = run(cfg);
  EXPECT_EQ(makespan2, makespan);
  EXPECT_EQ(bursts2, bursts);

  // And foreground IOs actually pay for the stolen die time.
  SsdConfig quiet = cfg;
  quiet.gc_interval_s = 0.0;
  const auto [quiet_makespan, quiet_bursts, quiet_stolen] = run(quiet);
  EXPECT_EQ(quiet_bursts, 0u);
  EXPECT_EQ(quiet_stolen, 0.0);
  EXPECT_GT(makespan, quiet_makespan);
}

TEST(MqSsdTest, ExportsQueueAndGcMetrics) {
  SsdConfig cfg = mq_config();
  cfg.gc_interval_s = 500e-6;
  cfg.gc_burst_s = 100e-6;
  MqSsdDevice dev(cfg);
  ClosedLoopConfig loop;
  loop.clients = 4;
  loop.ios_per_client = 32;
  loop.io_bytes = 64 * kKiB;
  loop.seed = 5;
  run_closed_loop(dev, loop);

  stats::MetricsRegistry reg;
  dev.export_metrics(reg, "dev.");
  EXPECT_EQ(reg.gauge("dev.mq.queue_pairs"), 4.0);
  EXPECT_EQ(reg.gauge("dev.mq.queue_depth"), 32.0);
  EXPECT_GT(reg.gauge("dev.mq.max_inflight"), 1.0);
  EXPECT_GT(reg.gauge("dev.mq.completion_seconds"), 0.0);
  EXPECT_GT(reg.gauge("dev.mq.gc.bursts"), 0.0);
  EXPECT_GT(reg.gauge("dev.mq.gc.stolen_seconds"), 0.0);
  double per_queue = 0.0;
  for (int q = 0; q < cfg.queue_pairs; ++q) {
    per_queue += reg.gauge("dev.mq.queue" + std::to_string(q) + ".ios");
  }
  EXPECT_EQ(per_queue, 4.0 * 32.0);  // every IO landed on some pair
}

TEST(MqSsdDeathTest, RejectsGcBurstsLongerThanTheInterval) {
  SsdConfig cfg = mq_config();
  cfg.gc_interval_s = 150e-6;
  cfg.gc_burst_s = 100e-6;  // interval must exceed 2 × burst
  EXPECT_DEATH(MqSsdDevice dev(cfg), "gc bursts");
}

}  // namespace
}  // namespace damkit::sim
