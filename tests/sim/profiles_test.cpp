#include "sim/profiles.h"

#include <gtest/gtest.h>

#include "util/bytes.h"

namespace damkit::sim {
namespace {

TEST(ProfilesTest, PaperHddListMatchesTable2Targets) {
  const auto profiles = paper_hdd_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  // Table 2 targets: (s seconds, t seconds per 4 KiB).
  const double target_s[] = {0.018, 0.015, 0.013, 0.012, 0.016};
  const double target_t[] = {0.000021, 0.000033, 0.000041, 0.000035,
                             0.000026};
  for (size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_NEAR(profiles[i].expected_setup_s(), target_s[i],
                target_s[i] * 0.01)
        << profiles[i].name;
    const double eff_t = (profiles[i].expected_transfer_s_per_byte() +
                          profiles[i].track_to_track_s * 0.25 /
                              static_cast<double>(profiles[i].track_bytes)) *
                         4096.0;
    EXPECT_NEAR(eff_t, target_t[i], target_t[i] * 0.02) << profiles[i].name;
  }
}

TEST(ProfilesTest, PaperSsdListMatchesTable1Saturation) {
  const auto profiles = paper_ssd_profiles();
  ASSERT_EQ(profiles.size(), 4u);
  const double target_mbps[] = {530, 2500, 260, 520};
  for (size_t i = 0; i < profiles.size(); ++i) {
    EXPECT_NEAR(profiles[i].saturated_read_bps() / 1e6, target_mbps[i],
                target_mbps[i] * 0.05)
        << profiles[i].name;
  }
}

TEST(ProfilesTest, HddYearsAndNamesPreserved) {
  const auto profiles = paper_hdd_profiles();
  EXPECT_EQ(profiles[0].year, 2002);
  EXPECT_EQ(profiles[4].year, 2018);
  EXPECT_NE(profiles[0].name.find("Seagate"), std::string::npos);
  EXPECT_NE(profiles[4].name.find("WD Red"), std::string::npos);
}

TEST(ProfilesTest, MakeHddProfileSolvesSeekCurve) {
  const HddConfig cfg =
      make_hdd_profile("x", 2020, 512ULL * kGiB, 7200.0, 0.014, 0.00003);
  EXPECT_NEAR(cfg.expected_setup_s(), 0.014, 1e-9);
  EXPECT_GT(cfg.full_stroke_s, cfg.track_to_track_s);
  HddDevice dev(cfg);
  EXPECT_GT(dev.num_tracks(), 0u);
}

TEST(ProfilesTest, MakeSsdProfileBusBottleneckAndKnee) {
  const SsdConfig cfg =
      make_ssd_profile("y", 256ULL * kGiB, 4, 8, 4096, 500.0, 3.0, 20e-6);
  EXPECT_EQ(cfg.total_dies(), 32);
  EXPECT_NEAR(cfg.saturated_read_bps() / 1e6, 500.0, 5.0);
  // Knee parameter sets the single-stream latency: P ≈ L·sat/64 KiB.
  const double implied_p =
      cfg.saturated_read_bps() / cfg.qd1_read_bps(64 * kKiB);
  EXPECT_NEAR(implied_p, 3.0, 0.5);
}

TEST(ProfilesTest, TestbedProfilesConstruct) {
  const HddConfig hdd = testbed_hdd_profile();
  EXPECT_NEAR(hdd.expected_setup_s(), 0.012, 1e-6);
  const SsdConfig ssd = testbed_ssd_profile();
  EXPECT_NEAR(ssd.saturated_read_bps() / 1e6, 520.0, 10.0);
}

TEST(ProfilesDeathTest, InfeasibleTargetsRejected) {
  // Setup cost smaller than half a rotation is unachievable at 7200 rpm.
  EXPECT_DEATH(
      make_hdd_profile("bad", 2020, kGiB, 7200.0, 0.003, 0.00003),
      "target setup");
  // Per-byte cost below the track-switch floor.
  EXPECT_DEATH(make_hdd_profile("bad", 2020, kGiB, 7200.0, 0.014, 1e-10),
               "track-switch floor");
}

}  // namespace
}  // namespace damkit::sim
