#include "betree_opt/opt_betree.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "kv/slice.h"
#include "sim/hdd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::betree_opt {
namespace {

class OptBeTreeTest : public testing::Test {
 protected:
  OptBeTreeTest() { reset(); }

  void reset(uint64_t node_bytes = 64 * kKiB, size_t fanout = 16,
             uint64_t cache_bytes = 512 * kKiB) {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 4ULL * kGiB;
    dev_ = std::make_unique<sim::HddDevice>(cfg, 1);
    io_ = std::make_unique<sim::IoContext>(*dev_);
    betree::BeTreeConfig tc;
    tc.node_bytes = node_bytes;
    tc.target_fanout = fanout;
    tc.cache_bytes = cache_bytes;
    tree_ = std::make_unique<OptBeTree>(*dev_, *io_, tc);
  }

  std::unique_ptr<sim::HddDevice> dev_;
  std::unique_ptr<sim::IoContext> io_;
  std::unique_ptr<OptBeTree> tree_;
};

TEST_F(OptBeTreeTest, BasicPutGet) {
  tree_->put("k", "v");
  EXPECT_EQ(tree_->get("k"), "v");
  EXPECT_EQ(tree_->get("missing"), std::nullopt);
}

TEST_F(OptBeTreeTest, SegmentCapIsBOverF) {
  EXPECT_EQ(tree_->segment_cap_bytes(), 64 * kKiB / 16);
}

TEST_F(OptBeTreeTest, CorrectUnderMixedWorkload) {
  std::map<std::string, std::string> ref;
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    const uint64_t id = rng.uniform(800);
    const std::string key = kv::encode_key(id);
    const double dice = rng.uniform_double();
    if (dice < 0.5) {
      const std::string value = kv::make_value(rng.next(), 40);
      tree_->put(key, value);
      ref[key] = value;
    } else if (dice < 0.7) {
      const auto got = tree_->get(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(got, std::nullopt);
      } else {
        EXPECT_EQ(got, it->second);
      }
    } else if (dice < 0.85) {
      tree_->erase(key);
      ref.erase(key);
    } else {
      tree_->upsert(key, 3);
      const auto it = ref.find(key);
      const uint64_t base =
          (it == ref.end()) ? 0 : betree::decode_counter(it->second);
      ref[key] = betree::encode_counter(base + 3);
    }
  }
  tree_->check_invariants();
  tree_->flush_cache();
  for (const auto& [k, v] : ref) EXPECT_EQ(tree_->get(k), v);
}

TEST_F(OptBeTreeTest, BufferCapEnforcedByFlushPressure) {
  // Hammer a skewed key range so a single child's buffer would exceed B/F
  // without the Theorem-9 cap.
  for (uint64_t i = 0; i < 20000; ++i) {
    const uint64_t id = (i % 10 == 0) ? i : (i % 97);  // 90% hot keys
    tree_->put(kv::encode_key(id), kv::make_value(i, 30));
  }
  tree_->check_invariants();
  // The cap property is structural: sweep every resident internal node.
  // check_invariants already walks the tree; here we assert the tree kept
  // flushing (pressure fired) rather than letting buffers grow.
  EXPECT_GT(tree_->op_stats().flushes, 0u);
}

TEST_F(OptBeTreeTest, ColdQueriesUseSegmentReads) {
  reset(64 * kKiB, 16, 8 * 64 * kKiB);  // small cache → cold queries
  constexpr uint64_t kN = 50000;
  tree_->bulk_load(kN, [](uint64_t i) {
    return std::make_pair(kv::encode_key(i), kv::make_value(i, 30));
  });
  Rng rng(13);
  for (int q = 0; q < 200; ++q) {
    const uint64_t id = rng.uniform(kN);
    EXPECT_EQ(tree_->get(kv::encode_key(id)), kv::make_value(id, 30));
  }
  EXPECT_GT(tree_->opt_stats().segment_reads, 0u);
  // Mean segment IO far below a whole node.
  const double mean_bytes =
      static_cast<double>(tree_->opt_stats().segment_bytes_read) /
      static_cast<double>(tree_->opt_stats().segment_reads);
  EXPECT_LT(mean_bytes, 64.0 * kKiB / 2);
}

TEST_F(OptBeTreeTest, QueriesCheaperThanStandardBeTree) {
  // Theorem 9's advantage appears when the node size is large relative to
  // the half-bandwidth point (αB ≫ 1): sub-node IOs then skip most of
  // the transfer cost. At small B the setup cost dominates both designs
  // and the segment-granular cache dilutes hot-node coverage — the same
  // reason the paper pairs this design with *large-node* Bε-trees.
  constexpr uint64_t kNode = 4 * kMiB;
  constexpr uint64_t kN = 400000;
  auto measure = [&](bool optimized) {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 8ULL * kGiB;
    sim::HddDevice dev(cfg, 3);
    sim::IoContext io(dev);
    betree::BeTreeConfig tc;
    tc.node_bytes = kNode;
    tc.target_fanout = 64;
    tc.cache_bytes = 4 * kNode;
    std::unique_ptr<betree::BeTree> t;
    if (optimized) {
      t = std::make_unique<OptBeTree>(dev, io, tc);
    } else {
      t = std::make_unique<betree::BeTree>(dev, io, tc);
    }
    t->bulk_load(kN, [](uint64_t i) {
      return std::make_pair(kv::encode_key(i), kv::make_value(i, 30));
    });
    const sim::SimTime before = io.now();
    Rng rng(5);
    for (int q = 0; q < 300; ++q) {
      const uint64_t id = rng.uniform(kN);
      if (!t->get(kv::encode_key(id)).has_value()) ADD_FAILURE();
    }
    return sim::to_seconds(io.now() - before);
  };
  const double standard = measure(false);
  const double optimized = measure(true);
  EXPECT_LT(optimized, standard);
}

TEST_F(OptBeTreeTest, MutationAfterPartialReadUpgradesResidency) {
  reset(64 * kKiB, 16, 8 * 64 * kKiB);
  constexpr uint64_t kN = 50000;
  tree_->bulk_load(kN, [](uint64_t i) {
    return std::make_pair(kv::encode_key(i), kv::make_value(i, 30));
  });
  // Query cold (partial loads) then mutate the same region.
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const uint64_t id = rng.uniform(kN);
    tree_->get(kv::encode_key(id));
    tree_->put(kv::encode_key(id), kv::make_value(id + 1, 30));
  }
  EXPECT_GT(tree_->opt_stats().residency_upgrades, 0u);
  tree_->check_invariants();
  tree_->flush_cache();
}

TEST_F(OptBeTreeTest, InsertCostNotWorseThanStandard) {
  // Theorem 9 leaves inserts asymptotically unchanged; allow a modest
  // constant-factor overhead from the eager B/F flushing.
  constexpr uint64_t kNode = 128 * kKiB;
  auto measure = [&](bool optimized) {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 8ULL * kGiB;
    sim::HddDevice dev(cfg, 3);
    sim::IoContext io(dev);
    betree::BeTreeConfig tc;
    tc.node_bytes = kNode;
    tc.target_fanout = 16;
    tc.cache_bytes = 16 * kNode;
    std::unique_ptr<betree::BeTree> t;
    if (optimized) {
      t = std::make_unique<OptBeTree>(dev, io, tc);
    } else {
      t = std::make_unique<betree::BeTree>(dev, io, tc);
    }
    const sim::SimTime before = io.now();
    for (uint64_t i = 0; i < 20000; ++i) {
      t->put(kv::encode_key(i * 2654435761 % 100000),
             kv::make_value(i, 30));
    }
    t->flush_cache();
    return sim::to_seconds(io.now() - before);
  };
  const double standard = measure(false);
  const double optimized = measure(true);
  EXPECT_LT(optimized, standard * 4.0);
}

}  // namespace
}  // namespace damkit::betree_opt
