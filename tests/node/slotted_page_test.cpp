// SlottedPage unit + fuzz coverage: wire round-trips, mutation sequences
// against a vector<string> reference model, boundary sizes, and the
// prefix-compare edge cases the branchless search must get right.
#include "node/slotted_page.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "kv/slice.h"
#include "util/rng.h"

namespace damkit::node {
namespace {

// Test records are [u8 len][bytes] so len_of is trivial.
std::string rec_of(std::string_view key) {
  std::string r;
  r.push_back(static_cast<char>(key.size()));
  r.append(key);
  return r;
}

std::string_view key_of(std::string_view rec) {
  return rec.substr(1, static_cast<uint8_t>(rec[0]));
}

size_t len_of(const uint8_t* p) { return size_t{1} + *p; }

std::vector<uint8_t> image_of(const std::vector<std::string>& keys) {
  std::vector<uint8_t> image;
  for (const std::string& k : keys) {
    const std::string r = rec_of(k);
    image.insert(image.end(), r.begin(), r.end());
  }
  return image;
}

TEST(SlottedPageTest, EmptyPage) {
  SlottedPage page;
  EXPECT_EQ(page.count(), 0u);
  EXPECT_EQ(page.live_bytes(), 0u);
  EXPECT_EQ(page.lower_bound("a", key_of), 0u);
  EXPECT_EQ(page.upper_bound("a", key_of), 0u);
  std::vector<uint8_t> out;
  page.write_to(&out);
  EXPECT_TRUE(out.empty());
}

TEST(SlottedPageTest, BuildFromImageRoundTrips) {
  const std::vector<std::string> keys = {"alpha", "beta", "delta", "zeta"};
  const std::vector<uint8_t> image = image_of(keys);
  SlottedPage page;
  page.build_from_image(image.data(), image.size(), keys.size(), len_of);
  ASSERT_EQ(page.count(), keys.size());
  EXPECT_TRUE(page.compact());
  EXPECT_EQ(page.live_bytes(), image.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(key_of(page.record(i)), keys[i]);
  }
  std::vector<uint8_t> out;
  page.write_to(&out);
  EXPECT_EQ(out, image);
}

TEST(SlottedPageTest, InsertEraseReplaceStayConsistent) {
  SlottedPage page;
  page.append(rec_of("bb"));
  page.append(rec_of("dd"));
  page.insert(0, rec_of("aa"));     // front insert breaks compactness
  page.insert(2, rec_of("cc"));     // middle insert
  ASSERT_EQ(page.count(), 4u);
  EXPECT_EQ(key_of(page.record(0)), "aa");
  EXPECT_EQ(key_of(page.record(1)), "bb");
  EXPECT_EQ(key_of(page.record(2)), "cc");
  EXPECT_EQ(key_of(page.record(3)), "dd");

  page.replace(1, rec_of("bbbb"));
  EXPECT_EQ(key_of(page.record(1)), "bbbb");
  page.erase(2);
  ASSERT_EQ(page.count(), 3u);
  EXPECT_EQ(key_of(page.record(2)), "dd");

  // Serialize reflects slot order, not heap order.
  std::vector<uint8_t> out;
  page.write_to(&out);
  EXPECT_EQ(out, image_of({"aa", "bbbb", "dd"}));
  EXPECT_EQ(page.live_bytes(), out.size());
}

TEST(SlottedPageTest, TruncateAndDropFront) {
  const std::vector<std::string> keys = {"a", "b", "c", "d", "e"};
  const std::vector<uint8_t> image = image_of(keys);
  SlottedPage left;
  left.build_from_image(image.data(), image.size(), keys.size(), len_of);
  left.truncate(2);
  EXPECT_TRUE(left.compact());  // compact truncation is a pure resize
  std::vector<uint8_t> out;
  left.write_to(&out);
  EXPECT_EQ(out, image_of({"a", "b"}));

  SlottedPage right;
  right.build_from_image(image.data(), image.size(), keys.size(), len_of);
  right.drop_front(2);
  out.clear();
  right.write_to(&out);
  EXPECT_EQ(out, image_of({"c", "d", "e"}));
}

TEST(SlottedPageTest, InsertAllocEncodesInPlace) {
  SlottedPage page;
  const std::string rec = rec_of("hello");
  uint8_t* p = page.insert_alloc(0, rec.size());
  std::memcpy(p, rec.data(), rec.size());
  EXPECT_EQ(key_of(page.record(0)), "hello");
  uint8_t* q = page.replace_alloc(0, 3);
  q[0] = 2;
  q[1] = 'h';
  q[2] = 'i';
  EXPECT_EQ(key_of(page.record(0)), "hi");
  EXPECT_EQ(page.live_bytes(), 3u);
}

// Prefix-compare edges: "ab" sorts between "a" and "b", and a key that is
// a strict prefix of a stored key must land *before* it.
TEST(SlottedPageTest, SearchPrefixEdges) {
  SlottedPage page;
  for (const char* k : {"a", "ab", "abc", "b"}) page.append(rec_of(k));
  EXPECT_EQ(page.lower_bound("a", key_of), 0u);
  EXPECT_EQ(page.upper_bound("a", key_of), 1u);
  EXPECT_EQ(page.lower_bound("ab", key_of), 1u);
  EXPECT_EQ(page.lower_bound("abb", key_of), 2u);
  EXPECT_EQ(page.lower_bound("abc", key_of), 2u);
  EXPECT_EQ(page.upper_bound("abc", key_of), 3u);
  EXPECT_EQ(page.lower_bound("", key_of), 0u);
  EXPECT_EQ(page.lower_bound("zz", key_of), 4u);
}

// Branchless search must agree with std::lower_bound/upper_bound on
// random sorted key sets, including duplicates and size-0/1/2 pages.
TEST(SlottedPageTest, SearchMatchesStdOnRandomSets) {
  Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    const size_t n = rng.uniform(33);  // 0..32 entries
    std::vector<std::string> keys;
    for (size_t i = 0; i < n; ++i) {
      std::string k;
      const size_t len = rng.uniform(6);  // includes empty keys
      for (size_t j = 0; j < len; ++j) {
        k.push_back(static_cast<char>('a' + rng.uniform(3)));
      }
      keys.push_back(std::move(k));
    }
    std::sort(keys.begin(), keys.end());
    SlottedPage page;
    for (const std::string& k : keys) page.append(rec_of(k));
    for (int probe = 0; probe < 20; ++probe) {
      std::string q;
      const size_t len = rng.uniform(6);
      for (size_t j = 0; j < len; ++j) {
        q.push_back(static_cast<char>('a' + rng.uniform(3)));
      }
      const size_t lb = static_cast<size_t>(
          std::lower_bound(keys.begin(), keys.end(), q) - keys.begin());
      const size_t ub = static_cast<size_t>(
          std::upper_bound(keys.begin(), keys.end(), q) - keys.begin());
      EXPECT_EQ(page.lower_bound(q, key_of), lb) << "n=" << n << " q=" << q;
      EXPECT_EQ(page.upper_bound(q, key_of), ub) << "n=" << n << " q=" << q;
    }
  }
}

// Fuzz: random mutation sequences against a vector<string> reference.
// Covers garbage growth + compaction, tail in-place replacement, boundary
// record sizes (empty keys, max u8 length), and round-trip after every
// few steps.
TEST(SlottedPageFuzzTest, MutationsMatchReferenceModel) {
  Rng rng(77001);
  for (int round = 0; round < 40; ++round) {
    SlottedPage page;
    std::vector<std::string> model;  // keys only (records derive from keys)
    for (int step = 0; step < 400; ++step) {
      const uint64_t action = rng.uniform(100);
      std::string key;
      const size_t len = rng.uniform(2) == 0
                             ? rng.uniform(4)        // short keys
                             : 200 + rng.uniform(56);  // near the u8 cap
      for (size_t j = 0; j < len; ++j) {
        key.push_back(static_cast<char>('a' + rng.uniform(26)));
      }
      if (action < 40 || model.empty()) {
        const size_t pos = rng.uniform(model.size() + 1);
        page.insert(pos, rec_of(key));
        model.insert(model.begin() + static_cast<ptrdiff_t>(pos), key);
      } else if (action < 60) {
        const size_t pos = rng.uniform(model.size());
        page.replace(pos, rec_of(key));
        model[pos] = key;
      } else if (action < 80) {
        const size_t pos = rng.uniform(model.size());
        page.erase(pos);
        model.erase(model.begin() + static_cast<ptrdiff_t>(pos));
      } else if (action < 90) {
        const size_t keep = rng.uniform(model.size() + 1);
        page.truncate(keep);
        model.resize(keep);
      } else {
        const size_t drop = rng.uniform(model.size() + 1);
        page.drop_front(drop);
        model.erase(model.begin(), model.begin() + static_cast<ptrdiff_t>(drop));
      }

      ASSERT_EQ(page.count(), model.size());
      if (step % 16 == 0) {
        std::vector<uint8_t> out;
        page.write_to(&out);
        ASSERT_EQ(out, image_of(model)) << "round " << round << " step "
                                        << step;
        ASSERT_EQ(page.live_bytes(), out.size());
        // Garbage stays bounded: amortized compaction invariant.
        ASSERT_LE(page.heap_bytes(), 2 * page.live_bytes() + 4096 + 512);
        // Rebuilding from the written image must reproduce the page.
        SlottedPage rebuilt;
        rebuilt.build_from_image(out.data(), out.size(), model.size(), len_of);
        for (size_t i = 0; i < model.size(); ++i) {
          ASSERT_EQ(key_of(rebuilt.record(i)), model[i]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace damkit::node
