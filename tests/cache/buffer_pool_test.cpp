#include "cache/buffer_pool.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace damkit::cache {
namespace {

struct Obj {
  explicit Obj(int v) : value(v) {}
  int value;
};

class BufferPoolTest : public testing::Test {
 protected:
  std::vector<uint64_t> written_;
  std::unique_ptr<BufferPool> make_pool(uint64_t capacity) {
    return std::make_unique<BufferPool>(
        capacity, [this](uint64_t id, void* obj) {
          written_.push_back(id);
          EXPECT_NE(obj, nullptr);
          return Status();
        });
  }
};

TEST_F(BufferPoolTest, GetMissThenHit) {
  auto pool = make_pool(1000);
  EXPECT_EQ(pool->get<Obj>(1), nullptr);
  EXPECT_EQ(pool->stats().misses, 1u);
  pool->put(1, std::make_shared<Obj>(42), 100, false);
  auto obj = pool->get<Obj>(1);
  ASSERT_NE(obj, nullptr);
  EXPECT_EQ(obj->value, 42);
  EXPECT_EQ(pool->stats().hits, 1u);
}

TEST_F(BufferPoolTest, EvictsLruFirst) {
  auto pool = make_pool(300);
  pool->put(1, std::make_shared<Obj>(1), 100, false);
  pool->put(2, std::make_shared<Obj>(2), 100, false);
  pool->put(3, std::make_shared<Obj>(3), 100, false);
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_NE(pool->get<Obj>(1), nullptr);
  pool->put(4, std::make_shared<Obj>(4), 100, false);
  EXPECT_TRUE(pool->contains(1));
  EXPECT_FALSE(pool->contains(2));
  EXPECT_TRUE(pool->contains(3));
  EXPECT_TRUE(pool->contains(4));
  EXPECT_EQ(pool->stats().evictions, 1u);
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  auto pool = make_pool(200);
  pool->put(1, std::make_shared<Obj>(1), 100, true);
  pool->put(2, std::make_shared<Obj>(2), 100, false);
  pool->put(3, std::make_shared<Obj>(3), 100, false);  // evicts 1 (dirty)
  EXPECT_EQ(written_, std::vector<uint64_t>{1});
  EXPECT_EQ(pool->stats().dirty_writebacks, 1u);
}

TEST_F(BufferPoolTest, CleanEvictionSkipsWriteback) {
  auto pool = make_pool(100);
  pool->put(1, std::make_shared<Obj>(1), 100, false);
  pool->put(2, std::make_shared<Obj>(2), 100, false);
  EXPECT_TRUE(written_.empty());
}

TEST_F(BufferPoolTest, PinnedEntriesSurviveEviction) {
  auto pool = make_pool(200);
  auto pinned = std::make_shared<Obj>(1);
  pool->put(1, pinned, 100, false);  // we keep a reference → pinned
  pool->put(2, std::make_shared<Obj>(2), 100, false);
  pool->put(3, std::make_shared<Obj>(3), 100, false);  // must evict 2, not 1
  EXPECT_TRUE(pool->contains(1));
  EXPECT_FALSE(pool->contains(2));
}

TEST_F(BufferPoolTest, TransientPinOverflowTolerated) {
  // One pinned entry plus an incoming one may exceed M transiently (a
  // tree descent pins the parent while loading the child); only a pinned
  // set that alone exceeds M is a hard error (see the death test below).
  auto pool = make_pool(150);
  auto a = std::make_shared<Obj>(1);
  pool->put(1, a, 100, false);           // pinned (we hold a reference)
  pool->put(2, std::make_shared<Obj>(2), 50, false);
  EXPECT_TRUE(pool->contains(1));
  EXPECT_TRUE(pool->contains(2));
  EXPECT_EQ(pool->charged_bytes(), 150u);
}

TEST_F(BufferPoolTest, PinnedBytesTracked) {
  auto pool = make_pool(1000);
  auto pinned = std::make_shared<Obj>(1);
  pool->put(1, pinned, 300, false);
  pool->put(2, std::make_shared<Obj>(2), 400, false);  // unpinned
  EXPECT_EQ(pool->pinned_bytes(), 300u);
  EXPECT_EQ(pool->stats().pinned_bytes, 300u);
  pinned.reset();  // drop our reference → nothing pinned
  EXPECT_EQ(pool->pinned_bytes(), 0u);
  EXPECT_EQ(pool->stats().pinned_bytes, 0u);
}

TEST_F(BufferPoolTest, FlushAllUsesBatchWriteback) {
  auto pool = make_pool(1000);
  std::vector<uint64_t> batched;
  pool->set_batch_writeback(
      [&](std::span<const std::pair<uint64_t, void*>> dirty,
          std::vector<bool>* written) {
        written->assign(dirty.size(), true);
        for (const auto& [id, obj] : dirty) {
          batched.push_back(id);
          EXPECT_NE(obj, nullptr);
        }
        return Status();
      });
  pool->put(1, std::make_shared<Obj>(1), 100, true);
  pool->put(2, std::make_shared<Obj>(2), 100, false);
  pool->put(3, std::make_shared<Obj>(3), 100, true);
  ASSERT_TRUE(pool->flush_all().ok());
  EXPECT_EQ(batched, (std::vector<uint64_t>{3, 1}));  // MRU → LRU order
  EXPECT_TRUE(written_.empty());  // batch path replaces per-entry callback
  EXPECT_EQ(pool->stats().dirty_writebacks, 2u);
  EXPECT_FALSE(pool->is_dirty(1));
  EXPECT_FALSE(pool->is_dirty(3));
  ASSERT_TRUE(pool->flush_all().ok());
  EXPECT_EQ(batched.size(), 2u);  // nothing dirty: no second batch
}

TEST_F(BufferPoolTest, MarkDirtyThenFlushAll) {
  auto pool = make_pool(1000);
  pool->put(1, std::make_shared<Obj>(1), 100, false);
  pool->put(2, std::make_shared<Obj>(2), 100, false);
  pool->mark_dirty(1);
  EXPECT_TRUE(pool->is_dirty(1));
  EXPECT_FALSE(pool->is_dirty(2));
  ASSERT_TRUE(pool->flush_all().ok());
  EXPECT_EQ(written_, std::vector<uint64_t>{1});
  EXPECT_FALSE(pool->is_dirty(1));  // clean after writeback
  ASSERT_TRUE(pool->flush_all().ok());
  EXPECT_EQ(written_.size(), 1u);  // no double write
}

TEST_F(BufferPoolTest, FlushAllPerEntryPathWithoutBatchFn) {
  // With no batch_writeback_ installed, flush_all walks entries MRU→LRU
  // through the per-entry callback, skipping clean ones.
  auto pool = make_pool(1000);
  pool->put(1, std::make_shared<Obj>(1), 100, true);
  pool->put(2, std::make_shared<Obj>(2), 100, false);
  pool->put(3, std::make_shared<Obj>(3), 100, true);
  pool->put(4, std::make_shared<Obj>(4), 100, true);
  ASSERT_TRUE(pool->flush_all().ok());
  EXPECT_EQ(written_, (std::vector<uint64_t>{4, 3, 1}));
  EXPECT_EQ(pool->stats().dirty_writebacks, 3u);
  EXPECT_FALSE(pool->is_dirty(1));
  EXPECT_FALSE(pool->is_dirty(3));
  EXPECT_FALSE(pool->is_dirty(4));
  ASSERT_TRUE(pool->flush_all().ok());
  EXPECT_EQ(written_.size(), 3u);  // all clean: nothing rewritten
}

TEST_F(BufferPoolTest, FlushAllFailureKeepsEntryDirtyAndResident) {
  // A writeback failure mid-checkpoint must not lose the entry or its
  // dirty bit: flush_all keeps going (other entries still land), reports
  // the first failure, and the failed entry can be flushed again later.
  uint64_t failing_id = 3;
  std::vector<uint64_t> written;
  BufferPool pool(1000, [&](uint64_t id, void*) {
    if (id == failing_id) return Status::unavailable("injected");
    written.push_back(id);
    return Status();
  });
  pool.put(1, std::make_shared<Obj>(1), 100, true);
  pool.put(2, std::make_shared<Obj>(2), 100, true);
  pool.put(3, std::make_shared<Obj>(3), 100, true);
  const uint64_t charged_before = pool.charged_bytes();

  const Status s = pool.flush_all();
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  // The healthy entries were still written and cleaned...
  EXPECT_EQ(written, (std::vector<uint64_t>{2, 1}));
  EXPECT_FALSE(pool.is_dirty(1));
  EXPECT_FALSE(pool.is_dirty(2));
  // ...the failed one stays resident, dirty, and fully charged.
  EXPECT_TRUE(pool.contains(3));
  EXPECT_TRUE(pool.is_dirty(3));
  EXPECT_EQ(pool.charged_bytes(), charged_before);
  EXPECT_EQ(pool.stats().writeback_failures, 1u);
  EXPECT_EQ(pool.stats().dirty_writebacks, 2u);

  // Once the device recovers, a later checkpoint completes the flush.
  failing_id = ~0ULL;
  ASSERT_TRUE(pool.flush_all().ok());
  EXPECT_EQ(written, (std::vector<uint64_t>{2, 1, 3}));
  EXPECT_FALSE(pool.is_dirty(3));
  EXPECT_EQ(pool.stats().dirty_writebacks, 3u);
}

TEST_F(BufferPoolTest, EraseDropsWithoutWriteback) {
  auto pool = make_pool(1000);
  pool->put(1, std::make_shared<Obj>(1), 100, true);
  pool->erase(1);
  EXPECT_FALSE(pool->contains(1));
  EXPECT_TRUE(written_.empty());
  EXPECT_EQ(pool->charged_bytes(), 0u);
  pool->erase(99);  // absent: no-op
}

TEST_F(BufferPoolTest, ClearFlushesAndEmpties) {
  auto pool = make_pool(1000);
  pool->put(1, std::make_shared<Obj>(1), 100, true);
  pool->put(2, std::make_shared<Obj>(2), 200, false);
  ASSERT_TRUE(pool->clear().ok());
  EXPECT_EQ(pool->entries(), 0u);
  EXPECT_EQ(pool->charged_bytes(), 0u);
  EXPECT_EQ(written_, std::vector<uint64_t>{1});
}

TEST_F(BufferPoolTest, ChargedBytesTracked) {
  auto pool = make_pool(1000);
  pool->put(1, std::make_shared<Obj>(1), 300, false);
  pool->put(2, std::make_shared<Obj>(2), 400, false);
  EXPECT_EQ(pool->charged_bytes(), 700u);
  pool->erase(1);
  EXPECT_EQ(pool->charged_bytes(), 400u);
}

TEST_F(BufferPoolTest, HitRate) {
  auto pool = make_pool(1000);
  pool->put(1, std::make_shared<Obj>(1), 10, false);
  pool->get<Obj>(1);
  pool->get<Obj>(1);
  pool->get<Obj>(2);
  EXPECT_NEAR(pool->stats().hit_rate(), 2.0 / 3.0, 1e-12);
}

TEST_F(BufferPoolTest, DestructorToleratesCleanEntries) {
  auto pool = make_pool(1000);
  pool->put(1, std::make_shared<Obj>(1), 10, false);
  pool.reset();  // clean entries: fine
}

TEST_F(BufferPoolTest, DiscardAllDropsDirtyStateWithoutWriteback) {
  // The crash-teardown path: a pool over a dead device must be emptiable
  // without issuing a single writeback (which would CHECK-abort or spend
  // simulated IO that never happened).
  auto pool = make_pool(1000);
  pool->put(1, std::make_shared<Obj>(1), 100, true);
  pool->put(2, std::make_shared<Obj>(2), 100, true);
  pool->put(3, std::make_shared<Obj>(3), 100, false);
  pool->discard_all();
  EXPECT_TRUE(written_.empty());
  EXPECT_FALSE(pool->contains(1));
  EXPECT_FALSE(pool->contains(2));
  EXPECT_FALSE(pool->contains(3));
  EXPECT_EQ(pool->charged_bytes(), 0u);
  // And the destructor's dirty-entry abort no longer fires.
  pool.reset();
}

TEST_F(BufferPoolTest, DiscardAllAfterFailedWritebackIsClean) {
  // Entries kept resident because their writeback failed (the deferred
  // set) are exactly what discard_all must be able to drop post-crash.
  bool fail = true;
  auto pool = std::make_unique<BufferPool>(1000, [&fail](uint64_t, void*) {
    return fail ? Status::unavailable("dead device") : Status();
  });
  pool->put(1, std::make_shared<Obj>(1), 100, true);
  EXPECT_FALSE(pool->flush_all().ok());
  pool->discard_all();
  pool.reset();
}

using BufferPoolDeathTest = BufferPoolTest;

TEST_F(BufferPoolDeathTest, DiscardAllWithPinnedEntryAborts) {
  auto pool = make_pool(1000);
  auto held = std::make_shared<Obj>(1);
  pool->put(1, held, 100, true);
  EXPECT_DEATH(pool->discard_all(), "pinned");
  // The death ran in a forked child; clean up the parent's dirty entry.
  held.reset();
  pool->discard_all();
}

TEST_F(BufferPoolDeathTest, PinnedSetOverBudgetAborts) {
  auto pool = make_pool(100);
  auto a = std::make_shared<Obj>(1);
  auto b = std::make_shared<Obj>(2);
  pool->put(1, a, 100, false);
  pool->put(2, b, 100, false);  // transient overflow: still tolerated
  auto c = std::make_shared<Obj>(3);
  // Resident pinned set (200) now exceeds M on its own: loud failure.
  EXPECT_DEATH(pool->put(3, c, 100, false), "pinned set exceeds capacity");
}

TEST_F(BufferPoolDeathTest, DoublePutAborts) {
  auto pool = make_pool(1000);
  pool->put(1, std::make_shared<Obj>(1), 10, false);
  EXPECT_DEATH(pool->put(1, std::make_shared<Obj>(2), 10, false),
               "already-resident");
}

TEST_F(BufferPoolDeathTest, MarkDirtyAbsentAborts) {
  auto pool = make_pool(1000);
  EXPECT_DEATH(pool->mark_dirty(5), "absent");
}

TEST_F(BufferPoolDeathTest, DestructorWithDirtyAborts) {
  EXPECT_DEATH(
      {
        BufferPool p(1000, [](uint64_t, void*) { return Status(); });
        p.put(1, std::make_shared<Obj>(1), 10, true);
        // p destroyed with dirty entry
      },
      "dirty entry");
}

}  // namespace
}  // namespace damkit::cache
