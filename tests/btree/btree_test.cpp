#include "btree/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "kv/slice.h"
#include "sim/hdd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::btree {
namespace {

class BTreeTest : public testing::Test {
 protected:
  BTreeTest() { reset(); }

  void reset(uint64_t node_bytes = 4096, uint64_t cache_bytes = 256 * kKiB) {
    sim::HddConfig cfg;
    cfg.capacity_bytes = 4ULL * kGiB;
    dev_ = std::make_unique<sim::HddDevice>(cfg, 1);
    io_ = std::make_unique<sim::IoContext>(*dev_);
    BTreeConfig tc;
    tc.node_bytes = node_bytes;
    tc.cache_bytes = cache_bytes;
    tree_ = std::make_unique<BTree>(*dev_, *io_, tc);
  }

  std::unique_ptr<sim::HddDevice> dev_;
  std::unique_ptr<sim::IoContext> io_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTreeBehaviour) {
  EXPECT_EQ(tree_->get("missing"), std::nullopt);
  EXPECT_FALSE(tree_->erase("missing"));
  EXPECT_TRUE(tree_->scan("", 10).empty());
  EXPECT_EQ(tree_->size(), 0u);
}

TEST_F(BTreeTest, PutGetSingle) {
  tree_->put("hello", "world");
  EXPECT_EQ(tree_->get("hello"), "world");
  EXPECT_EQ(tree_->get("hell"), std::nullopt);
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BTreeTest, OverwriteReplaces) {
  tree_->put("k", "v1");
  tree_->put("k", "v2");
  EXPECT_EQ(tree_->get("k"), "v2");
  EXPECT_EQ(tree_->size(), 1u);
}

TEST_F(BTreeTest, ManyInsertsWithSplits) {
  constexpr uint64_t kN = 5000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 20));
  }
  EXPECT_EQ(tree_->size(), kN);
  EXPECT_GT(tree_->height(), 1u);
  EXPECT_GT(tree_->op_stats().splits, 0u);
  tree_->check_invariants();
  for (uint64_t i = 0; i < kN; i += 97) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 20)) << i;
  }
}

TEST_F(BTreeTest, RandomOrderInsertsMatchReference) {
  std::map<std::string, std::string> ref;
  Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t id = rng.uniform(1000);
    const std::string k = kv::encode_key(id);
    const std::string v = kv::make_value(rng.next(), 24);
    tree_->put(k, v);
    ref[k] = v;
  }
  tree_->check_invariants();
  for (const auto& [k, v] : ref) EXPECT_EQ(tree_->get(k), v);
  EXPECT_EQ(tree_->size(), ref.size());
}

TEST_F(BTreeTest, EraseToEmpty) {
  for (uint64_t i = 0; i < 500; ++i) {
    tree_->put(kv::encode_key(i), "payload-value");
  }
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_TRUE(tree_->erase(kv::encode_key(i))) << i;
  }
  EXPECT_EQ(tree_->size(), 0u);
  for (uint64_t i = 0; i < 500; ++i) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)), std::nullopt);
  }
  tree_->check_invariants();
}

TEST_F(BTreeTest, EraseTriggersMergesAndHeightCollapse) {
  constexpr uint64_t kN = 4000;
  for (uint64_t i = 0; i < kN; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 30));
  }
  const size_t tall = tree_->height();
  ASSERT_GT(tall, 1u);
  // Delete all but a handful.
  for (uint64_t i = 0; i < kN - 10; ++i) {
    ASSERT_TRUE(tree_->erase(kv::encode_key(i)));
  }
  tree_->check_invariants();
  EXPECT_GT(tree_->op_stats().merges, 0u);
  EXPECT_LT(tree_->height(), tall);
  for (uint64_t i = kN - 10; i < kN; ++i) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 30));
  }
}

TEST_F(BTreeTest, ScanReturnsSortedRange) {
  for (uint64_t i = 0; i < 1000; ++i) {
    tree_->put(kv::encode_key(i * 2), kv::make_value(i, 10));
  }
  const auto out = tree_->scan(kv::encode_key(100), 50);
  ASSERT_EQ(out.size(), 50u);
  EXPECT_EQ(out[0].first, kv::encode_key(100));
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LT(kv::compare(out[i - 1].first, out[i].first), 0);
  }
  EXPECT_EQ(out[49].first, kv::encode_key(198));
}

TEST_F(BTreeTest, ScanFromBetweenKeysAndPastEnd) {
  for (uint64_t i = 0; i < 100; ++i) tree_->put(kv::encode_key(i * 10), "v");
  const auto mid = tree_->scan(kv::encode_key(15), 3);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid[0].first, kv::encode_key(20));
  const auto tail = tree_->scan(kv::encode_key(985), 100);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].first, kv::encode_key(990));
  EXPECT_TRUE(tree_->scan(kv::encode_key(2000), 10).empty());
}

TEST_F(BTreeTest, BulkLoadMatchesContents) {
  reset(4096);
  constexpr uint64_t kN = 20000;
  tree_->bulk_load(kN, [](uint64_t i) {
    return std::make_pair(kv::encode_key(i), kv::make_value(i, 16));
  });
  EXPECT_EQ(tree_->size(), kN);
  tree_->check_invariants();
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const uint64_t id = rng.uniform(kN);
    EXPECT_EQ(tree_->get(kv::encode_key(id)), kv::make_value(id, 16));
  }
  // Full scan sees every key in order.
  const auto all = tree_->scan("", kN + 10);
  ASSERT_EQ(all.size(), kN);
  EXPECT_EQ(all.front().first, kv::encode_key(0));
  EXPECT_EQ(all.back().first, kv::encode_key(kN - 1));
}

TEST_F(BTreeTest, BulkLoadThenMutate) {
  tree_->bulk_load(5000, [](uint64_t i) {
    return std::make_pair(kv::encode_key(i * 2), kv::make_value(i, 12));
  });
  tree_->put(kv::encode_key(1), "inserted");
  EXPECT_TRUE(tree_->erase(kv::encode_key(10)));
  tree_->check_invariants();
  EXPECT_EQ(tree_->get(kv::encode_key(1)), "inserted");
  EXPECT_EQ(tree_->get(kv::encode_key(10)), std::nullopt);
  EXPECT_EQ(tree_->size(), 5000u);
}

TEST_F(BTreeTest, PersistsAcrossCacheEvictions) {
  // Cache barely larger than a node: every access misses.
  reset(4096, 4 * 4096);
  for (uint64_t i = 0; i < 2000; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 40));
  }
  tree_->flush();
  EXPECT_GT(tree_->cache_stats().evictions, 0u);
  for (uint64_t i = 0; i < 2000; i += 53) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 40));
  }
  tree_->check_invariants();
}

TEST_F(BTreeTest, IoTimeAdvancesWithWork) {
  // A warm cache absorbs small working sets entirely (no device IO — the
  // correct behaviour); the flush must charge the deferred writes.
  const sim::SimTime start = io_->now();
  for (uint64_t i = 0; i < 500; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 100));
  }
  tree_->flush();
  EXPECT_GT(io_->now(), start);
  // And with a cache under pressure, IO happens during the ops themselves.
  reset(4096, 4 * 4096);
  const sim::SimTime start2 = io_->now();
  for (uint64_t i = 0; i < 2000; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 100));
  }
  EXPECT_GT(io_->now(), start2);
}

TEST_F(BTreeTest, LargeValuesNearNodeCapacity) {
  // Values big enough that a node holds only a couple of entries.
  reset(4096);
  for (uint64_t i = 0; i < 50; ++i) {
    tree_->put(kv::encode_key(i), kv::make_value(i, 1500));
  }
  tree_->check_invariants();
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(tree_->get(kv::encode_key(i)), kv::make_value(i, 1500));
  }
}

TEST_F(BTreeTest, OpStatsCount) {
  tree_->put("a", "1");
  tree_->get("a");
  tree_->get("b");
  tree_->erase("a");
  tree_->scan("", 10);
  const BTreeOpStats& s = tree_->op_stats();
  EXPECT_EQ(s.puts, 1u);
  EXPECT_EQ(s.gets, 2u);
  EXPECT_EQ(s.erases, 1u);
  EXPECT_EQ(s.scans, 1u);
}

TEST_F(BTreeTest, WriteAmplificationGrowsWithNodeSize) {
  // Lemma 3: B-tree write amp is Θ(B). Compare two node sizes.
  auto measure = [&](uint64_t node_bytes) {
    reset(node_bytes, 16 * node_bytes);
    tree_->bulk_load(20000, [](uint64_t i) {
      return std::make_pair(kv::encode_key(i), kv::make_value(i, 50));
    });
    dev_->clear_stats();
    Rng rng(5);
    for (int u = 0; u < 300; ++u) {
      const uint64_t id = rng.uniform(20000);
      tree_->put(kv::encode_key(id), kv::make_value(id + 1, 50));
    }
    tree_->flush();
    return static_cast<double>(dev_->stats().bytes_written) / (300.0 * 58.0);
  };
  const double small = measure(4096);
  const double big = measure(64 * kKiB);
  EXPECT_GT(big, small * 4);  // ~16x in theory; allow slack for caching
}

}  // namespace
}  // namespace damkit::btree
