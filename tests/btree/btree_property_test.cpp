// Property-style randomized testing: drive the B-tree and std::map with
// identical operation streams across a parameter grid and require
// identical observable behaviour plus intact structural invariants.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>

#include "btree/btree.h"
#include "kv/slice.h"
#include "sim/hdd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::btree {
namespace {

struct PropertyParam {
  uint64_t node_bytes;
  uint64_t cache_nodes;  // cache = cache_nodes × node_bytes
  size_t value_bytes;
  uint64_t key_space;
  uint64_t seed;
};

class BTreePropertyTest : public testing::TestWithParam<PropertyParam> {};

TEST_P(BTreePropertyTest, AgreesWithStdMap) {
  const PropertyParam p = GetParam();
  sim::HddConfig cfg;
  cfg.capacity_bytes = 4ULL * kGiB;
  sim::HddDevice dev(cfg, p.seed);
  sim::IoContext io(dev);
  BTreeConfig tc;
  tc.node_bytes = p.node_bytes;
  tc.cache_bytes = p.node_bytes * p.cache_nodes;
  BTree tree(dev, io, tc);

  std::map<std::string, std::string> ref;
  Rng rng(p.seed);
  constexpr int kOps = 4000;
  for (int i = 0; i < kOps; ++i) {
    const uint64_t id = rng.uniform(p.key_space);
    const std::string key = kv::encode_key(id);
    const double dice = rng.uniform_double();
    if (dice < 0.5) {
      const std::string value = kv::make_value(rng.next(), p.value_bytes);
      tree.put(key, value);
      ref[key] = value;
    } else if (dice < 0.75) {
      const auto got = tree.get(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(got, std::nullopt);
      } else {
        EXPECT_EQ(got, it->second);
      }
    } else if (dice < 0.9) {
      EXPECT_EQ(tree.erase(key), ref.erase(key) > 0);
    } else {
      const size_t limit = 1 + static_cast<size_t>(rng.uniform(20));
      const auto got = tree.scan(key, limit);
      auto it = ref.lower_bound(key);
      size_t n = 0;
      for (; it != ref.end() && n < limit; ++it, ++n) {
        ASSERT_LT(n, got.size());
        EXPECT_EQ(got[n].first, it->first);
        EXPECT_EQ(got[n].second, it->second);
      }
      EXPECT_EQ(got.size(), n);
    }
  }
  EXPECT_EQ(tree.size(), ref.size());
  tree.check_invariants();

  // After a full flush everything still matches (exercises serialization
  // of every dirty node).
  tree.flush();
  for (const auto& [k, v] : ref) EXPECT_EQ(tree.get(k), v);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, BTreePropertyTest,
    testing::Values(
        // Tiny nodes: deep tree, many splits/merges.
        PropertyParam{1024, 64, 16, 300, 1},
        PropertyParam{1024, 8, 16, 300, 2},   // heavy eviction
        // Small nodes, bigger values.
        PropertyParam{4096, 32, 120, 500, 3},
        // Narrow key space: constant overwrites and deletes.
        PropertyParam{4096, 16, 60, 40, 4},
        // Large nodes: shallow tree.
        PropertyParam{64 * 1024, 8, 100, 2000, 5},
        // Values near node capacity.
        PropertyParam{2048, 32, 400, 200, 6}),
    [](const testing::TestParamInfo<PropertyParam>& info) {
      return "node" + std::to_string(info.param.node_bytes) + "_cache" +
             std::to_string(info.param.cache_nodes) + "_val" +
             std::to_string(info.param.value_bytes) + "_keys" +
             std::to_string(info.param.key_space);
    });

}  // namespace
}  // namespace damkit::btree
