// Lifecycle property sweep: bulk load → heavy churn → full verification,
// across a node-size ladder. Exercises the interaction of bulk-built
// structure with reactive splits/merges/borrows that the op-level
// property test (which starts empty) cannot reach.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "btree/btree.h"
#include "kv/slice.h"
#include "sim/hdd.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit::btree {
namespace {

struct ChurnParam {
  uint64_t node_bytes;
  uint64_t items;
  size_t value_bytes;
  double delete_fraction;
  uint64_t seed;
};

class BTreeChurnTest : public testing::TestWithParam<ChurnParam> {};

TEST_P(BTreeChurnTest, BulkLoadThenChurnStaysCorrect) {
  const ChurnParam p = GetParam();
  sim::HddConfig cfg;
  cfg.capacity_bytes = 8ULL * kGiB;
  sim::HddDevice dev(cfg, p.seed);
  sim::IoContext io(dev);
  BTreeConfig tc;
  tc.node_bytes = p.node_bytes;
  tc.cache_bytes = std::max<uint64_t>(p.node_bytes * 6, 256 * kKiB);
  BTree tree(dev, io, tc);

  std::map<std::string, std::string> ref;
  tree.bulk_load(p.items, [&](uint64_t i) {
    auto kvp = std::make_pair(kv::encode_key(i * 2),
                              kv::make_value(i, p.value_bytes));
    ref.insert(kvp);
    return kvp;
  });
  tree.check_invariants();

  // Churn: new keys (odd ids force splits), overwrites, deletes.
  Rng rng(p.seed * 7 + 1);
  const uint64_t ops = p.items;  // 1:1 churn
  for (uint64_t i = 0; i < ops; ++i) {
    const uint64_t id = rng.uniform(4 * p.items);
    const std::string key = kv::encode_key(id);
    if (rng.uniform_double() < p.delete_fraction) {
      EXPECT_EQ(tree.erase(key), ref.erase(key) > 0);
    } else {
      const std::string value = kv::make_value(rng.next(), p.value_bytes);
      tree.put(key, value);
      ref[key] = value;
    }
  }
  tree.check_invariants();
  EXPECT_EQ(tree.size(), ref.size());

  // Sampled point verification + one long scan against the reference.
  Rng probe(p.seed * 13 + 5);
  for (int q = 0; q < 300; ++q) {
    const std::string key = kv::encode_key(probe.uniform(4 * p.items));
    const auto got = tree.get(key);
    const auto it = ref.find(key);
    if (it == ref.end()) {
      EXPECT_EQ(got, std::nullopt);
    } else {
      EXPECT_EQ(got, it->second);
    }
  }
  const std::string lo = kv::encode_key(p.items / 2);
  const auto scan = tree.scan(lo, 500);
  auto it = ref.lower_bound(lo);
  for (size_t i = 0; i < scan.size(); ++i, ++it) {
    ASSERT_NE(it, ref.end());
    EXPECT_EQ(scan[i].first, it->first);
    EXPECT_EQ(scan[i].second, it->second);
  }

  // Flush everything and verify once more from clean cache state.
  tree.flush();
  for (int q = 0; q < 100; ++q) {
    const std::string key = kv::encode_key(probe.uniform(4 * p.items));
    const auto it2 = ref.find(key);
    if (it2 == ref.end()) {
      EXPECT_EQ(tree.get(key), std::nullopt);
    } else {
      EXPECT_EQ(tree.get(key), it2->second);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ladder, BTreeChurnTest,
    testing::Values(ChurnParam{2048, 2000, 24, 0.2, 1},
                    ChurnParam{4096, 4000, 50, 0.3, 2},
                    ChurnParam{16 * 1024, 6000, 80, 0.25, 3},
                    ChurnParam{64 * 1024, 8000, 100, 0.4, 4},
                    // Delete-dominated: drives merges/borrows hard.
                    ChurnParam{4096, 4000, 40, 0.7, 5}),
    [](const testing::TestParamInfo<ChurnParam>& info) {
      return "node" + std::to_string(info.param.node_bytes) + "_items" +
             std::to_string(info.param.items) + "_del" +
             std::to_string(static_cast<int>(info.param.delete_fraction *
                                             100)) +
             "_seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace damkit::btree
