#include "btree/btree_node.h"

#include <gtest/gtest.h>

#include "kv/slice.h"

namespace damkit::btree {
namespace {

TEST(BTreeNodeTest, LeafPutKeepsSortedOrder) {
  auto leaf = BTreeNode::make_leaf();
  EXPECT_TRUE(leaf->leaf_put("b", "2"));
  EXPECT_TRUE(leaf->leaf_put("a", "1"));
  EXPECT_TRUE(leaf->leaf_put("c", "3"));
  ASSERT_EQ(leaf->entry_count(), 3u);
  EXPECT_EQ(leaf->key(0), "a");
  EXPECT_EQ(leaf->key(1), "b");
  EXPECT_EQ(leaf->key(2), "c");
  EXPECT_EQ(leaf->value(1), "2");
}

TEST(BTreeNodeTest, LeafPutOverwrites) {
  auto leaf = BTreeNode::make_leaf();
  EXPECT_TRUE(leaf->leaf_put("k", "old"));
  EXPECT_FALSE(leaf->leaf_put("k", "newer"));
  EXPECT_EQ(leaf->entry_count(), 1u);
  EXPECT_EQ(leaf->value(0), "newer");
  EXPECT_EQ(leaf->byte_size(), leaf->recomputed_byte_size());
}

TEST(BTreeNodeTest, LeafEraseTracksBytes) {
  auto leaf = BTreeNode::make_leaf();
  leaf->leaf_put("a", "111");
  leaf->leaf_put("b", "222");
  const uint64_t before = leaf->byte_size();
  EXPECT_TRUE(leaf->leaf_erase("a"));
  EXPECT_FALSE(leaf->leaf_erase("zzz"));
  EXPECT_LT(leaf->byte_size(), before);
  EXPECT_EQ(leaf->byte_size(), leaf->recomputed_byte_size());
}

TEST(BTreeNodeTest, LowerBoundSemantics) {
  auto leaf = BTreeNode::make_leaf();
  leaf->leaf_put("b", "1");
  leaf->leaf_put("d", "2");
  EXPECT_EQ(leaf->lower_bound("a"), 0u);
  EXPECT_EQ(leaf->lower_bound("b"), 0u);
  EXPECT_EQ(leaf->lower_bound("c"), 1u);
  EXPECT_EQ(leaf->lower_bound("d"), 1u);
  EXPECT_EQ(leaf->lower_bound("e"), 2u);
  EXPECT_TRUE(leaf->key_equals(0, "b"));
  EXPECT_FALSE(leaf->key_equals(0, "c"));
  EXPECT_FALSE(leaf->key_equals(9, "b"));
}

TEST(BTreeNodeTest, InternalChildIndexRouting) {
  auto node = BTreeNode::make_internal();
  node->internal_init(10);
  node->internal_insert(0, "m", 20);  // children: [10, 20], pivot "m"
  EXPECT_EQ(node->child_index("a"), 0u);
  EXPECT_EQ(node->child_index("m"), 1u);  // pivot itself goes right
  EXPECT_EQ(node->child_index("z"), 1u);
  node->internal_insert(1, "t", 30);
  EXPECT_EQ(node->child_index("p"), 1u);
  EXPECT_EQ(node->child_index("u"), 2u);
}

TEST(BTreeNodeTest, SerializeDeserializeLeaf) {
  auto leaf = BTreeNode::make_leaf();
  leaf->leaf_put("alpha", "one");
  leaf->leaf_put("beta", std::string(300, 'x'));
  leaf->set_next_leaf(77);
  std::vector<uint8_t> image;
  leaf->serialize(image);
  EXPECT_EQ(image.size(), leaf->byte_size());
  auto back = BTreeNode::deserialize(image);
  ASSERT_TRUE(back->is_leaf());
  EXPECT_EQ(back->entry_count(), 2u);
  EXPECT_EQ(back->key(0), "alpha");
  EXPECT_EQ(back->value(1), std::string(300, 'x'));
  EXPECT_EQ(back->next_leaf(), 77u);
  EXPECT_EQ(back->byte_size(), leaf->byte_size());
}

TEST(BTreeNodeTest, SerializeDeserializeInternal) {
  auto node = BTreeNode::make_internal();
  node->internal_init(5);
  node->internal_insert(0, "k1", 6);
  node->internal_insert(1, "k2", 7);
  std::vector<uint8_t> image;
  node->serialize(image);
  auto back = BTreeNode::deserialize(image);
  ASSERT_FALSE(back->is_leaf());
  EXPECT_EQ(back->child_count(), 3u);
  EXPECT_EQ(back->child(0), 5u);
  EXPECT_EQ(back->child(2), 7u);
  EXPECT_EQ(back->pivot(0), "k1");
  EXPECT_EQ(back->byte_size(), node->byte_size());
}

TEST(BTreeNodeTest, LeafSplitBalancedAndChained) {
  auto leaf = BTreeNode::make_leaf();
  for (int i = 0; i < 100; ++i) {
    leaf->leaf_put(kv::encode_key(static_cast<uint64_t>(i)), "v");
  }
  leaf->set_next_leaf(42);
  const uint64_t total = leaf->byte_size();
  auto split = leaf->split();
  EXPECT_EQ(split.separator, split.right->key(0));
  EXPECT_EQ(split.right->next_leaf(), 42u);
  // Roughly balanced by bytes.
  EXPECT_NEAR(static_cast<double>(leaf->byte_size()),
              static_cast<double>(split.right->byte_size()),
              static_cast<double>(total) * 0.2);
  // Order preserved across the cut.
  EXPECT_LT(kv::compare(leaf->key(leaf->entry_count() - 1),
                        split.right->key(0)),
            0);
  EXPECT_EQ(leaf->byte_size(), leaf->recomputed_byte_size());
  EXPECT_EQ(split.right->byte_size(), split.right->recomputed_byte_size());
}

TEST(BTreeNodeTest, InternalSplitMovesMedianUp) {
  auto node = BTreeNode::make_internal();
  node->internal_init(0);
  for (int i = 1; i <= 20; ++i) {
    node->internal_insert(static_cast<size_t>(i - 1),
                          kv::encode_key(static_cast<uint64_t>(i * 10)),
                          static_cast<uint64_t>(i));
  }
  const size_t total_children = node->child_count();
  auto split = node->split();
  // The separator is in neither half.
  for (size_t i = 0; i < node->pivot_count(); ++i) {
    EXPECT_NE(node->pivot(i), split.separator);
  }
  for (size_t i = 0; i < split.right->pivot_count(); ++i) {
    EXPECT_NE(split.right->pivot(i), split.separator);
  }
  EXPECT_EQ(node->child_count() + split.right->child_count(), total_children);
  EXPECT_EQ(node->byte_size(), node->recomputed_byte_size());
  EXPECT_EQ(split.right->byte_size(), split.right->recomputed_byte_size());
}

TEST(BTreeNodeTest, MergeLeavesRestoresAll) {
  auto left = BTreeNode::make_leaf();
  auto right = BTreeNode::make_leaf();
  left->leaf_put("a", "1");
  right->leaf_put("m", "2");
  right->leaf_put("z", "3");
  right->set_next_leaf(9);
  left->merge_from_right(*right, "m");
  EXPECT_EQ(left->entry_count(), 3u);
  EXPECT_EQ(left->next_leaf(), 9u);
  EXPECT_EQ(left->byte_size(), left->recomputed_byte_size());
  EXPECT_EQ(right->entry_count(), 0u);
}

TEST(BTreeNodeTest, MergeInternalsKeepsSeparator) {
  auto left = BTreeNode::make_internal();
  left->internal_init(1);
  left->internal_insert(0, "b", 2);
  auto right = BTreeNode::make_internal();
  right->internal_init(3);
  right->internal_insert(0, "x", 4);
  left->merge_from_right(*right, "m");
  EXPECT_EQ(left->child_count(), 4u);
  EXPECT_EQ(left->pivot(1), "m");
  EXPECT_EQ(left->byte_size(), left->recomputed_byte_size());
}

TEST(BTreeNodeTest, BorrowBalancesLeafBytes) {
  auto left = BTreeNode::make_leaf();
  auto right = BTreeNode::make_leaf();
  left->leaf_put("a", "1");
  for (int i = 0; i < 50; ++i) {
    right->leaf_put("m" + kv::encode_key(static_cast<uint64_t>(i)),
                    std::string(20, 'v'));
  }
  const std::string sep(right->key(0));
  const std::string new_sep = left->borrow_balance(*right, sep);
  EXPECT_GT(left->entry_count(), 1u);
  EXPECT_EQ(new_sep, right->key(0));
  EXPECT_LT(kv::compare(left->key(left->entry_count() - 1), new_sep), 0);
  EXPECT_EQ(left->byte_size(), left->recomputed_byte_size());
  EXPECT_EQ(right->byte_size(), right->recomputed_byte_size());
}

}  // namespace
}  // namespace damkit::btree
