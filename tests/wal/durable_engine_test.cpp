// DurableEngine contract tests: logged mutations survive abandon/recover
// exactly (the durable prefix), buffered records die with the crash,
// checkpoints truncate the WAL and move recovery onto the snapshot, and a
// checkpoint interrupted by a device crash stays retryable afterwards.
#include "wal/durable_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "harness/crash.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "sim/fault_injection.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"

namespace damkit::wal {
namespace {

using sim::FaultConfig;
using sim::FaultInjectingDevice;
using sim::IoContext;
using sim::SsdDevice;

kv::EngineConfig small_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 256 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 256 * kKiB;
  cfg.lsm.memtable_bytes = 32 * kKiB;
  cfg.lsm.sstable_target_bytes = 64 * kKiB;
  cfg.pdam.buffer_bytes = 32 * kKiB;
  return cfg;
}

std::string key_of(uint64_t i) { return kv::encode_key(i, 16); }
std::string value_of(uint64_t i) { return kv::make_value(i, 64); }

TEST(DurableEngineTest, CommittedPutsSurviveAbandonAndRecover) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  const DurabilityConfig dcfg =
      default_durability_config(dev.capacity_bytes());
  const auto make_inner = [&] {
    return kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
  };
  auto eng = std::make_unique<DurableEngine>(make_inner(), dev, io, dcfg);
  EXPECT_EQ(eng->name(), "btree+wal");
  for (uint64_t i = 0; i < 100; ++i) eng->put(key_of(i), value_of(i));
  eng->flush();
  const uint64_t live_digest = harness::state_digest(*eng);
  EXPECT_EQ(eng->durable_mutations(), 100u);

  eng->abandon();  // dirty cache pages die without writeback
  eng.reset();

  RecoveryReport report;
  StatusOr<std::unique_ptr<DurableEngine>> recovered =
      DurableEngine::recover(make_inner, dev, io, dcfg, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.snapshot_entries, 0u);
  EXPECT_EQ(report.replayed_records, 100u);
  EXPECT_EQ(report.durable_lsn, 100u);
  EXPECT_FALSE(report.torn_tail);
  EXPECT_EQ((*recovered)->durable_mutations(), 100u);
  EXPECT_EQ(harness::state_digest(**recovered), live_digest);
  for (uint64_t i = 0; i < 100; ++i) {
    const std::optional<std::string> got = (*recovered)->get(key_of(i));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(*got, value_of(i)) << i;
  }
}

TEST(DurableEngineTest, BufferedRecordsDieWithTheCrash) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  DurabilityConfig dcfg = default_durability_config(dev.capacity_bytes());
  dcfg.wal.group_ops = 8;
  const auto make_inner = [&] {
    return kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
  };
  auto eng = std::make_unique<DurableEngine>(make_inner(), dev, io, dcfg);
  // 10 puts: one full group of 8 commits, 2 stay buffered — and buffered
  // records are by definition NOT durable.
  for (uint64_t i = 0; i < 10; ++i) eng->put(key_of(i), value_of(i));
  EXPECT_EQ(eng->log().buffered_records(), 2u);
  eng->abandon();
  eng.reset();

  StatusOr<std::unique_ptr<DurableEngine>> recovered =
      DurableEngine::recover(make_inner, dev, io, dcfg, nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->durable_mutations(), 8u);
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_TRUE((*recovered)->get(key_of(i)).has_value()) << i;
  }
  EXPECT_FALSE((*recovered)->get(key_of(8)).has_value());
  EXPECT_FALSE((*recovered)->get(key_of(9)).has_value());
}

TEST(DurableEngineTest, CheckpointTruncatesWalAndRecoversFromSnapshot) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  DurabilityConfig dcfg = default_durability_config(dev.capacity_bytes());
  dcfg.wal.group_ops = 1;
  const auto make_inner = [&] {
    return kv::make_engine(kv::EngineKind::kBeTree, dev, io, small_config());
  };
  auto eng = std::make_unique<DurableEngine>(make_inner(), dev, io, dcfg);
  for (uint64_t i = 0; i < 50; ++i) eng->put(key_of(i), value_of(i));
  ASSERT_TRUE(eng->checkpoint().ok());
  EXPECT_EQ(eng->checkpoints(), 1u);
  EXPECT_EQ(eng->log().durable_bytes(), 0u) << "checkpoint must truncate";
  for (uint64_t i = 50; i < 60; ++i) eng->put(key_of(i), value_of(i));
  const uint64_t live_digest = harness::state_digest(*eng);
  eng->abandon();
  eng.reset();

  RecoveryReport report;
  StatusOr<std::unique_ptr<DurableEngine>> recovered =
      DurableEngine::recover(make_inner, dev, io, dcfg, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.snapshot_entries, 50u);
  EXPECT_EQ(report.snapshot_lsn, 50u);
  EXPECT_EQ(report.replayed_records, 10u);
  EXPECT_EQ((*recovered)->durable_mutations(), 60u);
  EXPECT_EQ(harness::state_digest(**recovered), live_digest);
}

TEST(DurableEngineTest, ErasesAndUpsertsReplayExactly) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  DurabilityConfig dcfg = default_durability_config(dev.capacity_bytes());
  dcfg.wal.group_ops = 1;
  const auto make_inner = [&] {
    return kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
  };
  // Reference: the same mutations against a bare engine.
  SsdDevice ref_dev(sim::testbed_ssd_profile());
  IoContext ref_io(ref_dev);
  const auto ref =
      kv::make_engine(kv::EngineKind::kBTree, ref_dev, ref_io, small_config());

  auto eng = std::make_unique<DurableEngine>(make_inner(), dev, io, dcfg);
  for (uint64_t i = 0; i < 40; ++i) {
    eng->put(key_of(i), value_of(i));
    ref->put(key_of(i), value_of(i));
  }
  for (uint64_t i = 0; i < 40; i += 4) {
    eng->erase(key_of(i));
    ref->erase(key_of(i));
  }
  for (uint64_t i = 100; i < 120; ++i) {
    const auto delta = static_cast<int64_t>(i * 7) - 400;
    eng->upsert(key_of(i), delta);
    ref->upsert(key_of(i), delta);
  }
  ref->flush();
  eng->abandon();
  eng.reset();

  StatusOr<std::unique_ptr<DurableEngine>> recovered =
      DurableEngine::recover(make_inner, dev, io, dcfg, nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(harness::state_digest(**recovered), harness::state_digest(*ref));
}

TEST(DurableEngineTest, BulkLoadIsImmediatelyRecoverable) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  const DurabilityConfig dcfg =
      default_durability_config(dev.capacity_bytes());
  const auto make_inner = [&] {
    return kv::make_engine(kv::EngineKind::kLsm, dev, io, small_config());
  };
  auto eng = std::make_unique<DurableEngine>(make_inner(), dev, io, dcfg);
  eng->bulk_load(200, [](uint64_t i) {
    return std::make_pair(key_of(i), value_of(i));
  });
  const uint64_t live_digest = harness::state_digest(*eng);
  // No mutations yet: the snapshot written by bulk_load IS the state.
  eng->abandon();
  eng.reset();

  RecoveryReport report;
  StatusOr<std::unique_ptr<DurableEngine>> recovered =
      DurableEngine::recover(make_inner, dev, io, dcfg, &report);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(report.snapshot_entries, 200u);
  EXPECT_EQ(report.replayed_records, 0u);
  EXPECT_EQ(harness::state_digest(**recovered), live_digest);
}

TEST(DurableEngineTest, AutoCheckpointKeepsTheWalBounded) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  DurabilityConfig dcfg = default_durability_config(dev.capacity_bytes());
  dcfg.wal.group_ops = 1;
  dcfg.checkpoint_wal_bytes = 8 * kKiB;
  const auto make_inner = [&] {
    return kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
  };
  auto eng = std::make_unique<DurableEngine>(make_inner(), dev, io, dcfg);
  for (uint64_t i = 0; i < 300; ++i) eng->put(key_of(i), value_of(i));
  EXPECT_GT(eng->checkpoints(), 0u);
  EXPECT_LT(eng->log().durable_bytes() + eng->log().buffered_bytes(),
            2 * dcfg.checkpoint_wal_bytes + dcfg.wal.block_bytes);
  stats::MetricsRegistry reg;
  eng->export_metrics(reg, "e.");
  EXPECT_GT(reg.counter("e.wal.auto_checkpoints"), 0u);
  EXPECT_GT(reg.counter("e.wal.truncations"), 0u);
}

// The satellite regression: a checkpoint interrupted by a device crash
// must fail with a Status (not abort, not silently succeed), leave every
// layer retryable, and the retried checkpoint must land cleanly.
TEST(DurableEngineTest, CheckpointCrashIsRetryableAfterReboot) {
  SsdDevice inner(sim::testbed_ssd_profile());
  FaultConfig faults;
  faults.seed = 9;
  FaultInjectingDevice dev(inner, faults);
  IoContext io(dev);
  DurabilityConfig dcfg = default_durability_config(dev.capacity_bytes());
  dcfg.wal.group_ops = 1;
  const auto make_inner = [&] {
    return kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
  };
  auto eng = std::make_unique<DurableEngine>(make_inner(), dev, io, dcfg);
  for (uint64_t i = 0; i < 60; ++i) eng->put(key_of(i), value_of(i));
  const uint64_t live_digest = harness::state_digest(*eng);

  dev.crash_after(2);  // dies a few IOs into the checkpoint
  const Status failed = eng->checkpoint();
  ASSERT_FALSE(failed.ok());
  dev.reboot();

  ASSERT_TRUE(eng->checkpoint().ok());
  EXPECT_EQ(eng->log().durable_bytes(), 0u);
  EXPECT_EQ(harness::state_digest(*eng), live_digest);

  // And the device image after the retried checkpoint is recoverable.
  eng->abandon();
  eng.reset();
  StatusOr<std::unique_ptr<DurableEngine>> recovered =
      DurableEngine::recover(make_inner, dev, io, dcfg, nullptr);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ((*recovered)->durable_mutations(), 60u);
  EXPECT_EQ(harness::state_digest(**recovered), live_digest);
}

TEST(DurableEngineTest, ExportsWalAndRecoveryMetrics) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  DurabilityConfig dcfg = default_durability_config(dev.capacity_bytes());
  dcfg.wal.group_ops = 1;
  const auto make_inner = [&] {
    return kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
  };
  auto eng = std::make_unique<DurableEngine>(make_inner(), dev, io, dcfg);
  for (uint64_t i = 0; i < 20; ++i) eng->put(key_of(i), value_of(i));
  {
    stats::MetricsRegistry reg;
    eng->export_metrics(reg, "e.");
    EXPECT_EQ(reg.counter("e.wal.records_appended"), 20u);
    EXPECT_EQ(reg.counter("e.wal.commits"), 20u);
    EXPECT_EQ(reg.counter("e.recovery.runs"), 0u);
    EXPECT_TRUE(reg.has_counter("e.snapshot.writes"));
    // The inner engine's metrics still land under the same prefix.
    EXPECT_TRUE(reg.has_counter("e.puts"));
  }
  eng->abandon();
  eng.reset();
  StatusOr<std::unique_ptr<DurableEngine>> recovered =
      DurableEngine::recover(make_inner, dev, io, dcfg, nullptr);
  ASSERT_TRUE(recovered.ok());
  stats::MetricsRegistry reg;
  (*recovered)->export_metrics(reg, "e.");
  EXPECT_EQ(reg.counter("e.recovery.runs"), 1u);
  EXPECT_EQ(reg.counter("e.recovery.replayed_records"), 20u);
  EXPECT_EQ(reg.counter("e.recovery.durable_lsn"), 20u);
}

}  // namespace
}  // namespace damkit::wal
