// WAL framing and replay edge cases: empty log, group-commit batching,
// exactly-block-aligned tails, torn final records, CRC-corrupt mid-log
// records, stale pre-truncation frames, and torn tail-block rewrites under
// a deterministic device crash. Replay must always accept a strict prefix
// of what was appended and say so loudly (wal.torn_tail / stale_records).
#include "wal/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/fault_injection.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"

namespace damkit::wal {
namespace {

using sim::FaultConfig;
using sim::FaultInjectingDevice;
using sim::IoContext;
using sim::SsdDevice;

constexpr uint64_t kBlock = 4096;
// Serialized record framing: magic4 + lsn8 + type1 + klen4 + vlen4 + crc8.
constexpr uint64_t kFrameOverhead = 29;

WalConfig small_wal(uint64_t region_bytes = 1 * kMiB, uint64_t group_ops = 1) {
  WalConfig cfg;
  cfg.base_offset = 0;
  cfg.region_bytes = region_bytes;
  cfg.block_bytes = kBlock;
  cfg.group_ops = group_ops;
  return cfg;
}

using Record = WriteAheadLog::Record;

Record make_record(uint64_t lsn, size_t value_bytes = 10) {
  Record r;
  r.lsn = lsn;
  r.type = static_cast<WriteAheadLog::RecordType>(1 + lsn % 3);
  r.key = "key-" + std::to_string(lsn);
  r.value = std::string(value_bytes, static_cast<char>('a' + lsn % 26));
  return r;
}

void append_all(WriteAheadLog& log, const std::vector<Record>& records) {
  for (const Record& r : records) {
    ASSERT_TRUE(log.append(r.type, r.key, r.value, r.lsn).ok());
  }
}

void expect_replayed(const std::vector<Record>& got,
                     const std::vector<Record>& want, size_t count) {
  ASSERT_EQ(got.size(), count);
  for (size_t i = 0; i < count; ++i) {
    EXPECT_EQ(got[i].lsn, want[i].lsn) << i;
    EXPECT_EQ(static_cast<int>(got[i].type), static_cast<int>(want[i].type))
        << i;
    EXPECT_EQ(got[i].key, want[i].key) << i;
    EXPECT_EQ(got[i].value, want[i].value) << i;
  }
}

TEST(WalTest, EmptyRegionRecoversClean) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal());
  // Never reset: the region is all zeros, which must read as a clean end.
  StatusOr<WriteAheadLog::ReplayResult> r = log.recover_scan(1);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->records.empty());
  EXPECT_FALSE(r->torn_tail);
  EXPECT_EQ(r->stale_records, 0u);
  EXPECT_EQ(log.next_lsn(), 1u);
  EXPECT_EQ(log.durable_bytes(), 0u);
}

TEST(WalTest, EmptyAfterResetRecoversClean) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal());
  ASSERT_TRUE(log.reset(7).ok());
  StatusOr<WriteAheadLog::ReplayResult> r = log.recover_scan(7);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->records.empty());
  EXPECT_FALSE(r->torn_tail);
  EXPECT_EQ(log.next_lsn(), 7u);
}

TEST(WalTest, AppendCommitReplayRoundTrip) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal());
  ASSERT_TRUE(log.reset(1).ok());
  std::vector<Record> records;
  for (uint64_t lsn = 1; lsn <= 10; ++lsn) records.push_back(make_record(lsn));
  append_all(log, records);
  ASSERT_TRUE(log.commit().ok());

  WriteAheadLog reader(dev, io, small_wal());
  StatusOr<WriteAheadLog::ReplayResult> r = reader.recover_scan(1);
  ASSERT_TRUE(r.ok());
  expect_replayed(r->records, records, records.size());
  EXPECT_FALSE(r->torn_tail);
  EXPECT_EQ(reader.next_lsn(), 11u);
  // The reader is positioned for appends: the next record replays too.
  const Record next = make_record(11);
  ASSERT_TRUE(reader.append(next.type, next.key, next.value, 11).ok());
  ASSERT_TRUE(reader.commit().ok());
  WriteAheadLog reader2(dev, io, small_wal());
  StatusOr<WriteAheadLog::ReplayResult> r2 = reader2.recover_scan(1);
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r2->records.size(), 11u);
  EXPECT_EQ(r2->records.back().key, next.key);
}

TEST(WalTest, GroupCommitBatchesRecords) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal(1 * kMiB, /*group_ops=*/4));
  ASSERT_TRUE(log.reset(1).ok());
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) {
    const Record r = make_record(lsn);
    ASSERT_TRUE(log.append(r.type, r.key, r.value, lsn).ok());
  }
  // Three buffered records, nothing durable yet.
  EXPECT_EQ(log.buffered_records(), 3u);
  EXPECT_EQ(log.durable_bytes(), 0u);
  const Record r4 = make_record(4);
  ASSERT_TRUE(log.append(r4.type, r4.key, r4.value, 4).ok());
  // The fourth append crossed group_ops: one commit, empty buffer.
  EXPECT_EQ(log.buffered_records(), 0u);
  EXPECT_GT(log.durable_bytes(), 0u);
  stats::MetricsRegistry reg;
  log.export_metrics(reg, "w.");
  EXPECT_EQ(reg.counter("w.wal.commits"), 1u);
  EXPECT_EQ(reg.counter("w.wal.records_appended"), 4u);
}

TEST(WalTest, ExactlyBlockAlignedTailRoundTrips) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal());
  ASSERT_TRUE(log.reset(1).ok());
  // One record framed to exactly one block: content ends on the boundary,
  // which forces the fence-block rule (zero padding < header size).
  Record aligned;
  aligned.lsn = 1;
  aligned.type = WriteAheadLog::RecordType::kPut;
  aligned.key = std::string(16, 'k');
  aligned.value = std::string(kBlock - kFrameOverhead - 16, 'v');
  ASSERT_TRUE(log.append(aligned.type, aligned.key, aligned.value, 1).ok());
  ASSERT_TRUE(log.commit().ok());
  EXPECT_EQ(log.durable_bytes(), kBlock);

  const Record next = make_record(2);
  ASSERT_TRUE(log.append(next.type, next.key, next.value, 2).ok());
  ASSERT_TRUE(log.commit().ok());

  WriteAheadLog reader(dev, io, small_wal());
  StatusOr<WriteAheadLog::ReplayResult> r = reader.recover_scan(1);
  ASSERT_TRUE(r.ok());
  expect_replayed(r->records, {aligned, next}, 2);
  EXPECT_FALSE(r->torn_tail);
}

TEST(WalTest, TornFinalRecordYieldsStrictPrefix) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal());
  ASSERT_TRUE(log.reset(1).ok());
  std::vector<Record> records;
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) records.push_back(make_record(lsn));
  append_all(log, records);
  ASSERT_TRUE(log.commit().ok());

  // Flip one byte inside the LAST record's value, past its header.
  uint64_t third_at = 0;
  for (int i = 0; i < 2; ++i) {
    third_at +=
        kFrameOverhead + records[i].key.size() + records[i].value.size();
  }
  const uint64_t victim = third_at + kFrameOverhead + 2;
  std::vector<uint8_t> byte(1);
  dev.read_bytes(victim, byte);
  byte[0] ^= 0xFF;
  dev.write_bytes(victim, byte);

  WriteAheadLog reader(dev, io, small_wal());
  StatusOr<WriteAheadLog::ReplayResult> r = reader.recover_scan(1);
  ASSERT_TRUE(r.ok());
  expect_replayed(r->records, records, 2);  // strict prefix: 1, 2 only
  EXPECT_TRUE(r->torn_tail);
  EXPECT_EQ(reader.next_lsn(), 3u);
  stats::MetricsRegistry reg;
  reader.export_metrics(reg, "w.");
  EXPECT_EQ(reg.counter("w.wal.torn_tail"), 1u);

  // The scan sealed the frontier: a second recovery sees the same prefix,
  // now with a clean end.
  WriteAheadLog reader2(dev, io, small_wal());
  StatusOr<WriteAheadLog::ReplayResult> r2 = reader2.recover_scan(1);
  ASSERT_TRUE(r2.ok());
  expect_replayed(r2->records, records, 2);
  EXPECT_FALSE(r2->torn_tail);
}

TEST(WalTest, CrcCorruptMidLogStopsAtLastValidPrefix) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal());
  ASSERT_TRUE(log.reset(1).ok());
  std::vector<Record> records;
  for (uint64_t lsn = 1; lsn <= 5; ++lsn) records.push_back(make_record(lsn));
  append_all(log, records);
  ASSERT_TRUE(log.commit().ok());

  // Corrupt record 2 of 5: replay must stop BEFORE it — records 3..5 are
  // unreachable even though their frames are intact (no holes allowed).
  const uint64_t second_at =
      kFrameOverhead + records[0].key.size() + records[0].value.size();
  const uint64_t victim = second_at + kFrameOverhead + 1;
  std::vector<uint8_t> byte(1);
  dev.read_bytes(victim, byte);
  byte[0] ^= 0x01;
  dev.write_bytes(victim, byte);

  WriteAheadLog reader(dev, io, small_wal());
  StatusOr<WriteAheadLog::ReplayResult> r = reader.recover_scan(1);
  ASSERT_TRUE(r.ok());
  expect_replayed(r->records, records, 1);
  EXPECT_TRUE(r->torn_tail);
  EXPECT_EQ(reader.next_lsn(), 2u);
}

TEST(WalTest, StaleFramesAfterLostTruncateAreRejected) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal());
  ASSERT_TRUE(log.reset(1).ok());
  std::vector<Record> records;
  for (uint64_t lsn = 1; lsn <= 3; ++lsn) records.push_back(make_record(lsn));
  append_all(log, records);
  ASSERT_TRUE(log.commit().ok());

  // A checkpoint covering LSNs 1..5 landed but the crash ate the truncate:
  // the region still opens with a valid frame carrying LSN 1 < 6. That
  // frame is stale, not state — replay must reject it.
  WriteAheadLog reader(dev, io, small_wal());
  StatusOr<WriteAheadLog::ReplayResult> r = reader.recover_scan(6);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->records.empty());
  EXPECT_FALSE(r->torn_tail);
  EXPECT_EQ(r->stale_records, 1u);
  EXPECT_EQ(reader.next_lsn(), 6u);
  stats::MetricsRegistry reg;
  reader.export_metrics(reg, "w.");
  EXPECT_EQ(reg.counter("w.wal.stale_records"), 1u);

  // The stale frontier was sealed: scanning again finds a clean empty log.
  WriteAheadLog reader2(dev, io, small_wal());
  StatusOr<WriteAheadLog::ReplayResult> r2 = reader2.recover_scan(6);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->records.empty());
  EXPECT_FALSE(r2->torn_tail);
  EXPECT_EQ(r2->stale_records, 0u);
}

TEST(WalTest, TruncateThenReuseReplaysOnlyNewRecords) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal());
  ASSERT_TRUE(log.reset(1).ok());
  std::vector<Record> old_records;
  for (uint64_t lsn = 1; lsn <= 4; ++lsn) {
    old_records.push_back(make_record(lsn, /*value_bytes=*/500));
  }
  append_all(log, old_records);
  ASSERT_TRUE(log.commit().ok());
  ASSERT_TRUE(log.truncate(5).ok());
  EXPECT_EQ(log.durable_bytes(), 0u);
  const Record fresh = make_record(5);
  ASSERT_TRUE(log.append(fresh.type, fresh.key, fresh.value, 5).ok());
  ASSERT_TRUE(log.commit().ok());

  WriteAheadLog reader(dev, io, small_wal());
  StatusOr<WriteAheadLog::ReplayResult> r = reader.recover_scan(5);
  ASSERT_TRUE(r.ok());
  expect_replayed(r->records, {fresh}, 1);
  EXPECT_FALSE(r->torn_tail);
  EXPECT_EQ(r->stale_records, 0u);
}

TEST(WalTest, RegionFullSurfacesResourceExhausted) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  WriteAheadLog log(dev, io, small_wal(/*region_bytes=*/4 * kBlock));
  ASSERT_TRUE(log.reset(1).ok());
  Status last;
  uint64_t lsn = 1;
  while (last.ok() && lsn < 100) {
    const Record r = make_record(lsn, /*value_bytes=*/900);
    last = log.append(r.type, r.key, r.value, lsn);
    ++lsn;
  }
  ASSERT_FALSE(last.ok());
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(last.message().find("checkpoint"), std::string::npos)
      << last.message();
  // The failed group stays buffered: nothing was silently dropped.
  EXPECT_GT(log.buffered_records(), 0u);
}

TEST(WalTest, CommitFailureKeepsBufferForRetry) {
  SsdDevice inner(sim::testbed_ssd_profile());
  FaultConfig faults;
  faults.seed = 11;
  FaultInjectingDevice dev(inner, faults);
  IoContext io(dev);
  WalConfig cfg = small_wal();
  WriteAheadLog log(dev, io, cfg);
  ASSERT_TRUE(log.reset(1).ok());

  dev.crash_after(0);  // the very next checked IO dies
  const Record r1 = make_record(1);
  const Status s = log.append(r1.type, r1.key, r1.value, 1);  // auto-commits
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(log.buffered_records(), 1u);
  EXPECT_EQ(log.durable_bytes(), 0u);

  dev.reboot();
  ASSERT_TRUE(log.commit().ok());
  EXPECT_EQ(log.buffered_records(), 0u);
  WriteAheadLog reader(dev, io, cfg);
  StatusOr<WriteAheadLog::ReplayResult> replay = reader.recover_scan(1);
  ASSERT_TRUE(replay.ok());
  expect_replayed(replay->records, {r1}, 1);
}

// A crash tearing the tail-block rewrite may only ever lose the NEW
// records: the durable prefix bytes are bit-identical in the new image.
TEST(WalTest, TornTailRewritePreservesDurablePrefix) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    SsdDevice inner(sim::testbed_ssd_profile());
    FaultConfig faults;
    faults.seed = seed;
    FaultInjectingDevice dev(inner, faults);
    IoContext io(dev);
    WriteAheadLog log(dev, io, small_wal());
    ASSERT_TRUE(log.reset(1).ok());
    const Record r1 = make_record(1);
    ASSERT_TRUE(log.append(r1.type, r1.key, r1.value, 1).ok());  // committed

    dev.crash_after(0);
    const Record r2 = make_record(2);
    ASSERT_FALSE(log.append(r2.type, r2.key, r2.value, 2).ok());
    dev.reboot();

    WriteAheadLog reader(dev, io, small_wal());
    StatusOr<WriteAheadLog::ReplayResult> r = reader.recover_scan(1);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    // Replay holds a prefix of [r1, r2] that always includes r1.
    const std::vector<Record> want = {r1, r2};
    ASSERT_GE(r->records.size(), 1u) << "seed " << seed;
    ASSERT_LE(r->records.size(), 2u) << "seed " << seed;
    expect_replayed(r->records, want, r->records.size());
  }
}

}  // namespace
}  // namespace damkit::wal
