// Double-slot snapshot atomicity: the header block is the commit point.
// A crash mid-payload leaves the slot unverifiable and load() falls back
// to the other slot; a crash on the header itself is all-or-nothing.
#include "wal/snapshot.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/fault_injection.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"

namespace damkit::wal {
namespace {

using sim::FaultConfig;
using sim::FaultInjectingDevice;
using sim::IoContext;
using sim::SsdDevice;

SnapshotConfig small_snapshot() {
  SnapshotConfig cfg;
  cfg.base_offset = 0;
  cfg.slot_bytes = 1 * kMiB;
  cfg.block_bytes = 4096;
  return cfg;
}

std::vector<uint8_t> make_payload(uint64_t seq, size_t bytes) {
  std::vector<uint8_t> payload(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    payload[i] = static_cast<uint8_t>((seq * 131 + i) & 0xFF);
  }
  return payload;
}

SnapshotMeta make_meta(uint64_t seq, const std::vector<uint8_t>& payload) {
  SnapshotMeta meta;
  meta.seq = seq;
  meta.last_lsn = seq * 100;
  meta.entries = seq * 10;
  meta.payload_bytes = payload.size();
  return meta;
}

TEST(SnapshotTest, FreshStoreLoadsNothing) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  SnapshotStore store(dev, io, small_snapshot());
  SnapshotMeta meta;
  std::vector<uint8_t> payload;
  StatusOr<bool> r = store.load(&meta, &payload);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  EXPECT_TRUE(payload.empty());
}

TEST(SnapshotTest, RoundTripsMetaAndPayload) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  SnapshotStore store(dev, io, small_snapshot());
  const std::vector<uint8_t> payload = make_payload(1, 10'000);
  ASSERT_TRUE(store.write(make_meta(1, payload), payload).ok());

  SnapshotMeta got;
  std::vector<uint8_t> got_payload;
  StatusOr<bool> r = store.load(&got, &got_payload);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(*r);
  EXPECT_EQ(got.seq, 1u);
  EXPECT_EQ(got.last_lsn, 100u);
  EXPECT_EQ(got.entries, 10u);
  EXPECT_EQ(got_payload, payload);
}

TEST(SnapshotTest, EmptyPayloadRoundTrips) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  SnapshotStore store(dev, io, small_snapshot());
  const std::vector<uint8_t> empty;
  ASSERT_TRUE(store.write(make_meta(1, empty), empty).ok());
  SnapshotMeta got;
  std::vector<uint8_t> got_payload;
  StatusOr<bool> r = store.load(&got, &got_payload);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(*r);
  EXPECT_EQ(got.entries, 10u);
  EXPECT_TRUE(got_payload.empty());
}

TEST(SnapshotTest, AlternatingSlotsKeepNewest) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  SnapshotStore store(dev, io, small_snapshot());
  for (uint64_t seq = 1; seq <= 3; ++seq) {
    const std::vector<uint8_t> payload = make_payload(seq, 5'000 + seq);
    ASSERT_TRUE(store.write(make_meta(seq, payload), payload).ok());
    SnapshotMeta got;
    std::vector<uint8_t> got_payload;
    StatusOr<bool> r = store.load(&got, &got_payload);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(*r);
    EXPECT_EQ(got.seq, seq);
    EXPECT_EQ(got_payload, make_payload(seq, 5'000 + seq));
  }
}

TEST(SnapshotTest, OversizedPayloadIsRejected) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  SnapshotStore store(dev, io, small_snapshot());
  const std::vector<uint8_t> payload = make_payload(1, 1 * kMiB);
  const Status s = store.write(make_meta(1, payload), payload);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(SnapshotTest, CrashMidPayloadFallsBackToOlderSlot) {
  SsdDevice inner(sim::testbed_ssd_profile());
  FaultConfig faults;
  faults.seed = 5;
  FaultInjectingDevice dev(inner, faults);
  IoContext io(dev);
  SnapshotStore store(dev, io, small_snapshot());
  const std::vector<uint8_t> old_payload = make_payload(1, 8'000);
  ASSERT_TRUE(store.write(make_meta(1, old_payload), old_payload).ok());

  // Seq 2 goes to the other slot; the device dies on its FIRST payload
  // write, so no header ever lands there.
  dev.crash_after(0);
  const std::vector<uint8_t> new_payload = make_payload(2, 8'000);
  ASSERT_FALSE(store.write(make_meta(2, new_payload), new_payload).ok());
  dev.reboot();

  SnapshotMeta got;
  std::vector<uint8_t> got_payload;
  StatusOr<bool> r = store.load(&got, &got_payload);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(*r);
  EXPECT_EQ(got.seq, 1u);
  EXPECT_EQ(got_payload, old_payload);
}

TEST(SnapshotTest, CrashOnHeaderWriteIsAllOrNothing) {
  // The header block is the commit point: tearing it mid-write must leave
  // the store in exactly one of two states — the old snapshot (torn header
  // fails verification) or the new one COMPLETE (the tear landed past the
  // 52 header bytes, and the payload was already durable). Never a mix.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    SsdDevice inner(sim::testbed_ssd_profile());
    FaultConfig faults;
    faults.seed = seed;
    FaultInjectingDevice dev(inner, faults);
    IoContext io(dev);
    SnapshotStore store(dev, io, small_snapshot());
    const std::vector<uint8_t> old_payload = make_payload(1, 8'000);
    ASSERT_TRUE(store.write(make_meta(1, old_payload), old_payload).ok());

    // 8000 bytes pad to one 256 KiB chunk: IO 3 is seq 2's payload batch,
    // IO 4 its header — the commit point. Kill exactly that one.
    dev.crash_after(1);
    const std::vector<uint8_t> new_payload = make_payload(2, 8'000);
    ASSERT_FALSE(store.write(make_meta(2, new_payload), new_payload).ok());
    dev.reboot();

    SnapshotMeta got;
    std::vector<uint8_t> got_payload;
    StatusOr<bool> r = store.load(&got, &got_payload);
    ASSERT_TRUE(r.ok()) << "seed " << seed;
    ASSERT_TRUE(*r) << "seed " << seed;
    if (got.seq == 1) {
      EXPECT_EQ(got_payload, old_payload) << "seed " << seed;
    } else {
      EXPECT_EQ(got.seq, 2u) << "seed " << seed;
      EXPECT_EQ(got_payload, new_payload) << "seed " << seed;
    }
  }
}

TEST(SnapshotTest, PayloadCorruptionDemotesSlotLoudly) {
  SsdDevice dev(sim::testbed_ssd_profile());
  IoContext io(dev);
  SnapshotStore store(dev, io, small_snapshot());
  const std::vector<uint8_t> payload = make_payload(3, 6'000);
  ASSERT_TRUE(store.write(make_meta(3, payload), payload).ok());

  // Seq 3 lives in slot 1; flip one payload byte behind the header block.
  const uint64_t victim = 1 * kMiB + 4096 + 1234;
  std::vector<uint8_t> byte(1);
  dev.read_bytes(victim, byte);
  byte[0] ^= 0x80;
  dev.write_bytes(victim, byte);

  SnapshotMeta got;
  std::vector<uint8_t> got_payload;
  StatusOr<bool> r = store.load(&got, &got_payload);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  stats::MetricsRegistry reg;
  store.export_metrics(reg, "s.");
  EXPECT_EQ(reg.counter("s.snapshot.invalid_slots"), 1u);
}

}  // namespace
}  // namespace damkit::wal
