// Serving-layer stress: every engine the factory builds — plus a 4-shard
// ShardedEngine — served at k ∈ {1, P, 4P} clients must reproduce the
// single-client reference digest and counters exactly. This is the
// concurrent extension of the cross-engine differential, and the binary
// CI runs under TSan/ASan: the producer threads, bounded queues, and
// controller handoff all get exercised at every width.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/workload_runner.h"
#include "kv/engine.h"
#include "kv/sharded_engine.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "util/bytes.h"

namespace damkit {
namespace {

kv::EngineConfig stress_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 128 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 128 * kKiB;
  cfg.lsm.memtable_bytes = 32 * kKiB;
  cfg.lsm.sstable_target_bytes = 64 * kKiB;
  cfg.pdam.buffer_bytes = 32 * kKiB;
  return cfg;
}

kv::WorkloadSpec stress_spec() {
  kv::WorkloadSpec spec;
  spec.key_space = 1500;
  spec.value_bytes = 40;
  spec.get_weight = 0.4;
  spec.put_weight = 0.35;
  spec.delete_weight = 0.05;
  spec.scan_weight = 0.05;
  spec.upsert_weight = 0.15;
  spec.scan_length = 20;
  spec.seed = 4711;
  return spec;
}

constexpr uint64_t kOps = 1500;
constexpr uint64_t kBulk = 600;

struct Build {
  std::unique_ptr<sim::SsdDevice> dev;
  std::unique_ptr<sim::IoContext> io;
  std::unique_ptr<kv::Dictionary> dict;
};

Build build(kv::EngineKind kind, bool sharded) {
  Build b;
  b.dev = std::make_unique<sim::SsdDevice>(sim::testbed_ssd_profile());
  b.io = std::make_unique<sim::IoContext>(*b.dev);
  if (sharded) {
    kv::ShardedConfig scfg;
    scfg.shards = 4;
    b.dict = kv::make_sharded_engine(kind, *b.dev, *b.io, stress_config(),
                                     scfg);
  } else {
    b.dict = kv::make_engine(kind, *b.dev, *b.io, stress_config());
  }
  return b;
}

harness::WorkloadRunResult reference_run(kv::EngineKind kind, bool sharded) {
  Build b = build(kind, sharded);
  harness::WorkloadRunner runner(*b.dict, *b.io);
  runner.bulk_load(kBulk, stress_spec());
  return runner.run(stress_spec(), kOps);
}

harness::ConcurrentRunResult concurrent_run(kv::EngineKind kind, bool sharded,
                                            uint64_t clients) {
  Build b = build(kind, sharded);
  harness::WorkloadRunner runner(*b.dict, *b.io);
  runner.bulk_load(kBulk, stress_spec());
  harness::ConcurrentRunOptions copts;
  copts.clients = clients;
  copts.inflight = 2;
  const sim::SsdConfig profile = sim::testbed_ssd_profile();
  copts.replay_device_factory = [profile]() -> std::unique_ptr<sim::Device> {
    return std::make_unique<sim::SsdDevice>(profile);
  };
  copts.lanes = static_cast<size_t>(profile.total_dies());
  copts.lane_of = [profile](uint64_t offset) {
    return static_cast<size_t>(profile.die_of(offset));
  };
  const harness::ConcurrentRunResult result =
      runner.run_concurrent(stress_spec(), kOps, copts);
  b.dict->check_invariants();
  return result;
}

struct StressParam {
  kv::EngineKind kind;
  bool sharded;
  const char* name;
};

class ServeStressTest : public testing::TestWithParam<StressParam> {};

TEST_P(ServeStressTest, EveryClientWidthMatchesTheReference) {
  const StressParam param = GetParam();
  const harness::WorkloadRunResult reference =
      reference_run(param.kind, param.sharded);
  ASSERT_GT(reference.get_hits, 0u);
  // {1, P, 4P} for the testbed device.
  const int p = sim::testbed_ssd_profile().total_dies();
  for (const uint64_t clients :
       {uint64_t{1}, uint64_t(p), uint64_t(4 * p)}) {
    const harness::ConcurrentRunResult run =
        concurrent_run(param.kind, param.sharded, clients);
    EXPECT_EQ(run.base.digest, reference.digest) << "k=" << clients;
    EXPECT_EQ(run.base.get_hits, reference.get_hits) << "k=" << clients;
    EXPECT_EQ(run.base.puts, reference.puts) << "k=" << clients;
    EXPECT_EQ(run.base.failed_ops, 0u) << "k=" << clients;
    EXPECT_EQ(run.latency.count(), kOps) << "k=" << clients;
    EXPECT_GT(run.throughput_ops_per_sec, 0.0) << "k=" << clients;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, ServeStressTest,
    testing::Values(StressParam{kv::EngineKind::kBTree, false, "btree"},
                    StressParam{kv::EngineKind::kBeTree, false, "betree"},
                    StressParam{kv::EngineKind::kOptBeTree, false,
                                "opt_betree"},
                    StressParam{kv::EngineKind::kLsm, false, "lsm"},
                    StressParam{kv::EngineKind::kPdam, false, "pdam"},
                    StressParam{kv::EngineKind::kBTree, true, "sharded"}),
    [](const testing::TestParamInfo<StressParam>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace damkit
