// OpQueue: bounded SPSC handoff between a session's producer thread and
// the scheduler's controller. FIFO order, backpressure at the capacity
// bound, and close() semantics (wake waiters, drop pushes, drain pops).
#include "serve/op_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace damkit::serve {
namespace {

ClientOp make_op(uint64_t index) {
  ClientOp op;
  op.op.type = kv::OpType::kPut;
  op.op.key_id = index * 7;
  op.global_index = index;
  return op;
}

TEST(OpQueueTest, PopsInPushOrder) {
  OpQueue q(16);
  for (uint64_t i = 0; i < 10; ++i) q.push(make_op(i));
  for (uint64_t i = 0; i < 10; ++i) {
    ClientOp out;
    ASSERT_TRUE(q.pop(&out));
    EXPECT_EQ(out.global_index, i);
    EXPECT_EQ(out.op.key_id, i * 7);
  }
}

TEST(OpQueueTest, ProducerBlocksAtCapacityUntilConsumed) {
  OpQueue q(4);
  constexpr uint64_t kOps = 100;  // far past the bound: producer must block
  std::thread producer([&q] {
    for (uint64_t i = 0; i < kOps; ++i) q.push(make_op(i));
  });
  for (uint64_t i = 0; i < kOps; ++i) {
    ClientOp out;
    ASSERT_TRUE(q.pop(&out));
    EXPECT_EQ(out.global_index, i);
  }
  producer.join();
}

TEST(OpQueueTest, CloseWakesBlockedPop) {
  OpQueue q(4);
  std::thread consumer([&q] {
    ClientOp out;
    EXPECT_FALSE(q.pop(&out));  // empty + closed: end of stream
  });
  q.close();
  consumer.join();
}

TEST(OpQueueTest, CloseDrainsPendingThenEndsStream) {
  OpQueue q(8);
  q.push(make_op(0));
  q.push(make_op(1));
  q.close();
  ClientOp out;
  EXPECT_TRUE(q.pop(&out));
  EXPECT_EQ(out.global_index, 0u);
  EXPECT_TRUE(q.pop(&out));
  EXPECT_EQ(out.global_index, 1u);
  EXPECT_FALSE(q.pop(&out));
  // Pushes after close are dropped, not enqueued.
  q.push(make_op(2));
  EXPECT_FALSE(q.pop(&out));
}

TEST(OpQueueTest, CloseUnblocksFullQueueProducer) {
  OpQueue q(1);
  q.push(make_op(0));  // queue now full
  std::thread producer([&q] {
    q.push(make_op(1));  // blocks until close drops it
  });
  q.close();
  producer.join();
  ClientOp out;
  EXPECT_TRUE(q.pop(&out));  // the op enqueued before close survives
  EXPECT_EQ(out.global_index, 0u);
  EXPECT_FALSE(q.pop(&out));
}

}  // namespace
}  // namespace damkit::serve
