// build_io_chain: recover an op's stage structure from its trace slice.
// Records sharing a submission time are one stage (a batch); a later
// submission time starts a dependent stage.
#include "serve/io_chain.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/trace.h"

namespace damkit::serve {
namespace {

sim::TraceRecord rec(uint64_t offset, sim::SimTime submit, sim::SimTime start,
                     sim::SimTime finish) {
  sim::TraceRecord r;
  r.kind = sim::IoKind::kRead;
  r.offset = offset;
  r.length = 4096;
  r.submit = submit;
  r.start = start;
  r.finish = finish;
  return r;
}

TEST(IoChainTest, EmptySliceYieldsEmptyChain) {
  const std::vector<sim::TraceRecord> records;
  const OpIoChain chain = build_io_chain(records, 0, 0);
  EXPECT_TRUE(chain.stages.empty());
  EXPECT_EQ(chain.io_count(), 0u);
}

TEST(IoChainTest, SequentialSubmissionsBecomeSeparateStages) {
  // A three-level root-to-leaf walk: each IO submitted after the previous
  // one finished.
  const std::vector<sim::TraceRecord> records = {
      rec(0, 0, 0, 100),
      rec(4096, 100, 100, 250),
      rec(8192, 250, 250, 400),
  };
  const OpIoChain chain = build_io_chain(records, 0, records.size());
  ASSERT_EQ(chain.stages.size(), 3u);
  for (const IoStage& stage : chain.stages) {
    EXPECT_EQ(stage.ios.size(), 1u);
  }
  EXPECT_EQ(chain.stages[1].ios[0].offset, 4096u);
  EXPECT_EQ(chain.io_count(), 3u);
}

TEST(IoChainTest, SharedSubmitTimeFormsOneStage) {
  // A batch of three at t=500, then one dependent IO at the batch finish.
  const std::vector<sim::TraceRecord> records = {
      rec(0, 500, 500, 620),
      rec(4096, 500, 500, 640),
      rec(8192, 500, 560, 700),
      rec(12288, 700, 700, 820),
  };
  const OpIoChain chain = build_io_chain(records, 0, records.size());
  ASSERT_EQ(chain.stages.size(), 2u);
  EXPECT_EQ(chain.stages[0].ios.size(), 3u);
  EXPECT_EQ(chain.stages[1].ios.size(), 1u);
  EXPECT_EQ(chain.io_count(), 4u);
}

TEST(IoChainTest, SliceBoundsSelectOneOpsRecords) {
  // Two ops back to back in one trace; the second op's slice must not see
  // the first op's records even though their submit times differ.
  const std::vector<sim::TraceRecord> records = {
      rec(0, 0, 0, 100),
      rec(4096, 100, 100, 200),   // op 0 ends here
      rec(8192, 200, 200, 300),   // op 1
      rec(12288, 300, 300, 400),
  };
  const OpIoChain chain = build_io_chain(records, 2, 4);
  ASSERT_EQ(chain.stages.size(), 2u);
  EXPECT_EQ(chain.stages[0].ios[0].offset, 8192u);
  EXPECT_EQ(chain.stages[1].ios[0].offset, 12288u);
}

}  // namespace
}  // namespace damkit::serve
