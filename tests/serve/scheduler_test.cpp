// serve::Scheduler: the record/replay split must keep a k-client run
// bit-identical to the single-client reference (digest, counters, serial
// time), while the replayed concurrent timeline is deterministic, faster
// when the device has parallelism to exploit, and falls back to the serial
// makespan when no replay device is supplied.
#include "serve/scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "harness/workload_runner.h"
#include "kv/engine.h"
#include "serve/session.h"
#include "sim/mq_ssd.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"

namespace damkit {
namespace {

// The cache must be small against the working set: a scheduler test where
// every op hits cache has nothing to overlap in replay.
kv::EngineConfig small_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 32 * kKiB;
  return cfg;
}

kv::WorkloadSpec mixed_spec() {
  kv::WorkloadSpec spec;
  spec.key_space = 6000;
  spec.value_bytes = 48;
  spec.get_weight = 0.4;
  spec.put_weight = 0.4;
  spec.delete_weight = 0.05;
  spec.scan_weight = 0.05;
  spec.upsert_weight = 0.1;
  spec.scan_length = 25;
  spec.seed = 909;
  return spec;
}

serve::ServeConfig replayed_config(uint64_t clients, uint64_t inflight = 4) {
  serve::ServeConfig cfg;
  cfg.clients = clients;
  cfg.inflight = inflight;
  const sim::SsdConfig profile = sim::testbed_ssd_profile();
  cfg.replay_device_factory = [profile]() -> std::unique_ptr<sim::Device> {
    return std::make_unique<sim::SsdDevice>(profile);
  };
  cfg.lanes = static_cast<size_t>(profile.total_dies());
  cfg.lane_of = [profile](uint64_t offset) {
    return static_cast<size_t>(profile.die_of(offset));
  };
  return cfg;
}

serve::ServeResult serve_once(const serve::ServeConfig& cfg, uint64_t ops) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  const auto dict =
      kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
  harness::WorkloadRunner(*dict, io).bulk_load(1500, mixed_spec());
  serve::Scheduler scheduler(*dict, io, cfg);
  return scheduler.serve(mixed_spec(), ops);
}

TEST(ClientSessionTest, ProducesItsResidueClassInOrder) {
  serve::ClientSession session(mixed_spec(), /*client_id=*/1, /*clients=*/3,
                               /*total_ops=*/10, /*queue_capacity=*/4);
  EXPECT_EQ(session.op_count(), 3u);  // global indices 1, 4, 7
  serve::ClientOp op;
  // Pop exactly op_count() ops — the controller's contract; the stream has
  // no end-of-stream marker (the destructor closes the queue).
  for (const uint64_t expected : {1u, 4u, 7u}) {
    ASSERT_TRUE(session.next(&op));
    EXPECT_EQ(op.global_index, expected);
  }
}

TEST(ClientSessionTest, RoundRobinMergeReconstructsTheGeneratorStream) {
  const kv::WorkloadSpec spec = mixed_spec();
  constexpr uint64_t kClients = 4;
  constexpr uint64_t kOps = 23;  // not a multiple of k: ragged tail
  std::vector<std::unique_ptr<serve::ClientSession>> sessions;
  for (uint64_t c = 0; c < kClients; ++c) {
    sessions.push_back(std::make_unique<serve::ClientSession>(
        spec, c, kClients, kOps, /*queue_capacity=*/4));
  }
  kv::OpGenerator generator(spec);
  for (uint64_t i = 0; i < kOps; ++i) {
    const kv::Op expected = generator.next();
    serve::ClientOp got;
    ASSERT_TRUE(sessions[i % kClients]->next(&got));
    EXPECT_EQ(got.global_index, i);
    EXPECT_EQ(got.op.type, expected.type);
    EXPECT_EQ(got.op.key_id, expected.key_id);
    EXPECT_EQ(got.op.scan_length, expected.scan_length);
  }
}

TEST(SchedulerTest, KClientDigestEqualsSingleClientReference) {
  const serve::ServeResult one = serve_once(replayed_config(1), 2000);
  const serve::ServeResult eight = serve_once(replayed_config(8), 2000);
  EXPECT_EQ(eight.digest, one.digest);
  EXPECT_EQ(eight.serial_elapsed, one.serial_elapsed);
  EXPECT_EQ(eight.counters.gets, one.counters.gets);
  EXPECT_EQ(eight.counters.puts, one.counters.puts);
  EXPECT_EQ(eight.counters.get_hits, one.counters.get_hits);
  EXPECT_EQ(eight.ops, 2000u);
}

TEST(SchedulerTest, ServeIsDeterministic) {
  const serve::ServeResult a = serve_once(replayed_config(8), 2000);
  const serve::ServeResult b = serve_once(replayed_config(8), 2000);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.serial_elapsed, b.serial_elapsed);
  EXPECT_EQ(a.concurrent_elapsed, b.concurrent_elapsed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.batch_ios, b.batch_ios);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.percentile(99.0), b.latency.percentile(99.0));
}

TEST(SchedulerTest, ParallelDeviceShortensTheConcurrentMakespan) {
  const serve::ServeResult one = serve_once(replayed_config(1), 2000);
  const serve::ServeResult eight = serve_once(replayed_config(8), 2000);
  EXPECT_LT(eight.concurrent_elapsed, one.concurrent_elapsed);
  EXPECT_GT(eight.speedup(), 1.0);
  // Every op's latency is observed exactly once.
  EXPECT_EQ(eight.latency.count(), 2000u);
}

TEST(SchedulerTest, DeeperAdmissionNeverSlowsTheReplay) {
  const serve::ServeResult shallow = serve_once(replayed_config(4, 1), 2000);
  const serve::ServeResult deep = serve_once(replayed_config(4, 8), 2000);
  EXPECT_LE(deep.concurrent_elapsed, shallow.concurrent_elapsed);
}

TEST(SchedulerTest, WithoutReplayDeviceConcurrentEqualsSerial) {
  serve::ServeConfig cfg;
  cfg.clients = 4;
  const serve::ServeResult result = serve_once(cfg, 1000);
  EXPECT_EQ(result.concurrent_elapsed, result.serial_elapsed);
  EXPECT_DOUBLE_EQ(result.speedup(), 1.0);
  EXPECT_EQ(result.batches, 0u);
}

TEST(SchedulerTest, LaneAccountingIsConserved) {
  const serve::ServeResult result = serve_once(replayed_config(8), 2000);
  uint64_t lane_total = 0;
  for (const uint64_t n : result.lane_ios) lane_total += n;
  EXPECT_EQ(lane_total, result.batch_ios);
  EXPECT_GT(result.batch_ios, 0u);
  EXPECT_GE(result.max_lane_depth, 1u);
  EXPECT_EQ(result.lane_ios.size(),
            static_cast<size_t>(sim::testbed_ssd_profile().total_dies()));
}

// Replay-device spy: forwards timing to an owned MqSsdDevice while
// tallying which SQ/CQ pair each request named, into shared state that
// outlives the device (the scheduler destroys its replay device before
// serve() returns).
class QueueSpyDevice final : public sim::Device {
 public:
  QueueSpyDevice(const sim::SsdConfig& cfg,
                 std::shared_ptr<std::map<uint32_t, uint64_t>> counts)
      : sim::Device(cfg.capacity_bytes),
        inner_(cfg),
        counts_(std::move(counts)) {}
  std::string name() const override { return inner_.name(); }

 protected:
  sim::IoCompletion submit_io(const sim::IoRequest& req,
                              sim::SimTime now) override {
    ++(*counts_)[req.queue];
    return inner_.submit(req, now);
  }
  std::vector<sim::IoCompletion> submit_batch_io(
      std::span<const sim::IoRequest> reqs, sim::SimTime now) override {
    for (const sim::IoRequest& req : reqs) ++(*counts_)[req.queue];
    return inner_.submit_batch(reqs, now);
  }

 private:
  sim::MqSsdDevice inner_;
  std::shared_ptr<std::map<uint32_t, uint64_t>> counts_;
};

// PR-7's sessions must map onto the MQ device's queue pairs: with k
// clients replaying onto an MqSsdDevice, every request carries its
// owning client's id in IoRequest::queue, so all k pairs see traffic —
// not one shared SQ.
TEST(SchedulerTest, SessionsLandOnDistinctMqQueuePairs) {
  const sim::SsdConfig profile = sim::testbed_mq_profile();
  const auto counts = std::make_shared<std::map<uint32_t, uint64_t>>();
  serve::ServeConfig cfg;
  cfg.clients = 4;
  cfg.replay_device_factory = [profile,
                               counts]() -> std::unique_ptr<sim::Device> {
    return std::make_unique<QueueSpyDevice>(profile, counts);
  };
  cfg.lanes = static_cast<size_t>(profile.total_dies());
  cfg.lane_of = [profile](uint64_t offset) {
    return static_cast<size_t>(profile.die_of(offset));
  };
  const serve::ServeResult result = serve_once(cfg, 2000);
  EXPECT_GT(result.batch_ios, 0u);
  EXPECT_EQ(counts->size(), 4u) << "expected one queue id per client";
  uint64_t total = 0;
  for (const auto& [queue, ios] : *counts) {
    EXPECT_LT(queue, 4u);
    EXPECT_GT(ios, 0u) << "queue pair " << queue << " saw no traffic";
    total += ios;
  }
  EXPECT_EQ(total, result.batch_ios);
}

TEST(SchedulerTest, ExportMetricsCoversTheServingSurface) {
  const serve::ServeResult result = serve_once(replayed_config(8), 1000);
  stats::MetricsRegistry reg;
  result.export_metrics(reg, "serve.");
  EXPECT_EQ(reg.counter("serve.ops"), 1000u);
  EXPECT_EQ(reg.counter("serve.batches"), result.batches);
  EXPECT_EQ(reg.counter("serve.latency_ns.count"), 1000u);
  EXPECT_GT(reg.gauge("serve.latency_ns.p99"), 0.0);
  EXPECT_GT(reg.gauge("serve.speedup"), 1.0);
  EXPECT_GT(reg.gauge("serve.throughput_ops_per_sec"), 0.0);
}

}  // namespace
}  // namespace damkit
