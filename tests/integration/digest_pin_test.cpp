// Digest bit-identity acceptance: the canonical differential workload is
// pinned to literal pre-refactor constants. The cross-engine differential
// test proves the engines agree with *each other*; this test proves they
// agree with *history* — any change to node byte-size accounting, split
// boundaries, op-generation RNG streams, or value derivation shows up as
// a digest mismatch here even if all engines drift together.
//
// The constants were captured from the pre-slotted-layout tree (vector of
// owned std::string per node) and must survive the zero-copy port
// unchanged.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "harness/workload_runner.h"
#include "kv/sharded_engine.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "util/bytes.h"

namespace damkit {
namespace {

// Mirrors cross_engine_differential_test.cpp exactly; duplicated on
// purpose so an edit over there cannot silently re-baseline this pin.
kv::EngineConfig pinned_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 256 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 256 * kKiB;
  cfg.lsm.memtable_bytes = 32 * kKiB;
  cfg.lsm.sstable_target_bytes = 64 * kKiB;
  cfg.pdam.buffer_bytes = 32 * kKiB;
  return cfg;
}

kv::WorkloadSpec pinned_spec() {
  kv::WorkloadSpec spec;
  spec.key_space = 3000;
  spec.value_bytes = 56;
  spec.get_weight = 0.35;
  spec.put_weight = 0.35;
  spec.delete_weight = 0.1;
  spec.scan_weight = 0.05;
  spec.upsert_weight = 0.15;
  spec.scan_length = 40;
  spec.seed = 2026;
  return spec;
}

// Captured on the pre-refactor tree (vector<std::string> node layout,
// commit 9d91982); identical across all five engines and the sharded
// composition.
constexpr uint64_t kPinnedDigest = 7807822745986309438ULL;
constexpr uint64_t kPinnedGetHits = 1366ULL;
constexpr uint64_t kPinnedScans = 292ULL;

harness::WorkloadRunResult drive(kv::Dictionary& dict, sim::IoContext& io) {
  harness::WorkloadRunner runner(dict, io);
  runner.bulk_load(1500, pinned_spec());
  const harness::WorkloadRunResult result = runner.run(pinned_spec(), 6000);
  dict.check_invariants();
  return result;
}

TEST(DigestPinTest, AllEnginesMatchPreRefactorDigest) {
  for (const kv::EngineKind kind : kv::kAllEngineKinds) {
    sim::SsdDevice dev(sim::testbed_ssd_profile());
    sim::IoContext io(dev);
    const auto dict = kv::make_engine(kind, dev, io, pinned_config());
    const harness::WorkloadRunResult result = drive(*dict, io);
    EXPECT_EQ(result.digest, kPinnedDigest) << dict->name();
    EXPECT_EQ(result.get_hits, kPinnedGetHits) << dict->name();
    EXPECT_EQ(result.scans, kPinnedScans) << dict->name();
    EXPECT_EQ(result.failed_ops, 0u) << dict->name();
  }
}

TEST(DigestPinTest, ShardedCompositionMatchesPreRefactorDigest) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::ShardedConfig sharded;
  sharded.shards = 4;
  const auto dict = kv::make_sharded_engine(kv::EngineKind::kBTree, dev, io,
                                            pinned_config(), sharded);
  const harness::WorkloadRunResult result = drive(*dict, io);
  EXPECT_EQ(result.digest, kPinnedDigest);
  EXPECT_EQ(result.get_hits, kPinnedGetHits);
}

}  // namespace
}  // namespace damkit
