// Cross-module integration: dictionaries on the SSD simulator, tracing
// through real workloads, scheduler-vs-tree interplay, and corrupted
// image handling — flows no single-module test exercises.
#include <gtest/gtest.h>

#include <memory>

#include "betree/betree.h"
#include "btree/btree.h"
#include "kv/engine.h"
#include "kv/slice.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "sim/trace.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit {
namespace {

TEST(CrossModuleTest, BTreeOnSsd) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 1 * kMiB;
  const auto tree = kv::make_engine(kv::EngineKind::kBTree, dev, io, cfg);
  for (uint64_t i = 0; i < 5000; ++i) {
    tree->put(kv::encode_key(i), kv::make_value(i, 50));
  }
  tree->flush();
  tree->check_invariants();
  for (uint64_t i = 0; i < 5000; i += 37) {
    EXPECT_EQ(tree->get(kv::encode_key(i)), kv::make_value(i, 50));
  }
  // Same logical workload is far faster on flash than the HDD testbed.
  EXPECT_GT(io.now(), 0u);
}

TEST(CrossModuleTest, SsdFasterThanHddForRandomTreeOps) {
  auto run_on = [](sim::Device& dev) {
    sim::IoContext io(dev);
    kv::EngineConfig cfg;
    cfg.btree.node_bytes = 16 * kKiB;
    cfg.btree.cache_bytes = 512 * kKiB;
    const auto tree = kv::make_engine(kv::EngineKind::kBTree, dev, io, cfg);
    tree->bulk_load(30000, [](uint64_t i) {
      return std::make_pair(kv::encode_key(i), kv::make_value(i, 60));
    });
    Rng rng(5);
    for (int q = 0; q < 200; ++q) {
      (void)tree->get(kv::encode_key(rng.uniform(30000)));
    }
    return io.now();
  };
  sim::HddDevice hdd(sim::testbed_hdd_profile(), 1);
  sim::SsdDevice ssd(sim::testbed_ssd_profile());
  const sim::SimTime hdd_t = run_on(hdd);
  const sim::SimTime ssd_t = run_on(ssd);
  EXPECT_LT(ssd_t * 5, hdd_t);
}

TEST(CrossModuleTest, TracingThroughBeTreeWorkload) {
  sim::HddDevice dev(sim::testbed_hdd_profile(), 1);
  sim::IoTrace trace;
  dev.set_trace(&trace);
  sim::IoContext io(dev);
  {
    kv::EngineConfig cfg;
    cfg.betree.node_bytes = 64 * kKiB;
    cfg.betree.cache_bytes = 512 * kKiB;
    const auto tree = kv::make_engine(kv::EngineKind::kBeTree, dev, io, cfg);
    for (uint64_t i = 0; i < 20000; ++i) {
      tree->put(kv::encode_key(i), kv::make_value(i, 50));
    }
    tree->flush();
  }
  dev.set_trace(nullptr);
  ASSERT_FALSE(trace.empty());
  // The trace accounts for exactly the device's byte counters.
  EXPECT_EQ(trace.total_bytes(),
            dev.stats().bytes_read + dev.stats().bytes_written);
  // Bulk Bε ingest is write-mostly.
  uint64_t writes = 0;
  for (const auto& r : trace.records()) {
    if (r.kind == sim::IoKind::kWrite) ++writes;
  }
  EXPECT_GT(writes * 2, trace.size());

  // Replay the captured workload on a fresh identical disk: since the
  // recording device was idle at t=0 and requests replay back-to-back,
  // the replay cannot be slower than the recorded span.
  sim::HddDevice fresh(sim::testbed_hdd_profile(), 1);
  const sim::SimTime replay_t = sim::replay_trace(fresh, trace);
  EXPECT_GT(replay_t, 0u);
}

TEST(CrossModuleTest, LsmOnSsdProfile) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  kv::EngineConfig cfg;
  cfg.lsm.memtable_bytes = 64 * kKiB;
  cfg.lsm.sstable_target_bytes = 256 * kKiB;
  cfg.lsm.level1_bytes = 1 * kMiB;
  const auto tree = kv::make_engine(kv::EngineKind::kLsm, dev, io, cfg);
  for (uint64_t i = 0; i < 20000; ++i) {
    tree->put(kv::encode_key(i % 5000), kv::make_value(i, 40));
  }
  tree->flush();
  tree->check_invariants();
  for (uint64_t k = 0; k < 5000; k += 111) {
    EXPECT_TRUE(tree->get(kv::encode_key(k)).has_value()) << k;
  }
}

TEST(CrossModuleTest, TwoTreesShareOneDevice) {
  // A B-tree and a Bε-tree co-resident on one disk at different offsets:
  // the extent spaces must not alias.
  sim::HddDevice dev(sim::testbed_hdd_profile(), 1);
  sim::IoContext io(dev);
  kv::EngineConfig bcfg;
  bcfg.btree.node_bytes = 16 * kKiB;
  bcfg.btree.cache_bytes = 1 * kMiB;
  kv::set_base_offset(bcfg, 0);
  const auto bt = kv::make_engine(kv::EngineKind::kBTree, dev, io, bcfg);

  kv::EngineConfig ecfg;
  ecfg.betree.node_bytes = 64 * kKiB;
  ecfg.betree.cache_bytes = 1 * kMiB;
  kv::set_base_offset(ecfg, 100ULL * kGiB);  // second half of the disk
  const auto bet = kv::make_engine(kv::EngineKind::kBeTree, dev, io, ecfg);

  for (uint64_t i = 0; i < 3000; ++i) {
    bt->put(kv::encode_key(i), "btree-" + std::to_string(i));
    bet->put(kv::encode_key(i), "betree-" + std::to_string(i));
  }
  bt->flush();
  bet->flush();
  for (uint64_t i = 0; i < 3000; i += 101) {
    EXPECT_EQ(bt->get(kv::encode_key(i)), "btree-" + std::to_string(i));
    EXPECT_EQ(bet->get(kv::encode_key(i)), "betree-" + std::to_string(i));
  }
  bt->check_invariants();
  bet->check_invariants();
}

TEST(CrossModuleDeathTest, OversizedEntriesRejectedUpFront) {
  // Entries too large for the node size would make splits spin forever;
  // both trees must reject them loudly instead.
  sim::HddDevice dev(sim::testbed_hdd_profile(), 1);
  sim::IoContext io(dev);
  kv::EngineConfig bcfg;
  bcfg.btree.node_bytes = 4096;
  bcfg.btree.cache_bytes = 64 * 1024;
  const auto bt = kv::make_engine(kv::EngineKind::kBTree, dev, io, bcfg);
  EXPECT_DEATH(bt->put("k", std::string(4000, 'x')), "too large");
  bt->put("k", std::string(1900, 'x'));  // within node/2: fine

  kv::EngineConfig ecfg;
  ecfg.betree.node_bytes = 4096;
  ecfg.betree.cache_bytes = 64 * 1024;
  const auto bet = kv::make_engine(kv::EngineKind::kBeTree, dev, io, ecfg);
  EXPECT_DEATH(bet->put("k", std::string(4000, 'x')), "too large");
  bet->put("k", std::string(1900, 'x'));
  bet->flush();
}

TEST(CrossModuleDeathTest, CorruptNodeImagesCaughtOnDeserialize) {
  // Bit-rot on the simulated device must be caught loudly, not decoded
  // into a plausible-but-wrong node.
  auto leaf = btree::BTreeNode::make_leaf();
  leaf->leaf_put("k", "v");
  std::vector<uint8_t> image;
  leaf->serialize(image);
  image[0] ^= 0xff;  // clobber the magic
  EXPECT_DEATH((void)btree::BTreeNode::deserialize(image), "magic");

  auto node = betree::BeTreeNode::make_leaf();
  node->leaf_apply({betree::MessageKind::kPut, "k", "v"});
  std::vector<uint8_t> be_image;
  node->serialize(be_image);
  be_image[1] ^= 0x5a;
  EXPECT_DEATH((void)betree::BeTreeNode::deserialize(be_image), "magic");

  // Truncation inside the payload trips the bounds-checked reader.
  leaf->serialize(image);
  image.resize(image.size() - 2);
  EXPECT_DEATH((void)btree::BTreeNode::deserialize(image), "short read");
}

}  // namespace
}  // namespace damkit
