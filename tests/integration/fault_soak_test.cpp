// Fault soak: every dictionary runs a mixed workload on a seeded
// fault-injecting SSD, entirely through the fallible try_* APIs. The
// contract under test is the ISSUE's acceptance bar: an injected fault is
// either retried away inside the tree or surfaced as a non-OK Status —
// never an abort — and no operation that reported success loses data.
//
// Mutations that *failed* leave their key in a deliberately unspecified
// (old-or-new, but internally consistent) state, so the reference model
// marks such keys "uncertain" and stops asserting their exact value.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "betree/betree.h"
#include "betree_opt/opt_betree.h"
#include "btree/btree.h"
#include "kv/slice.h"
#include "lsm/lsm_tree.h"
#include "sim/fault_injection.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace damkit {
namespace {

// Sized so the working set dwarfs the (deliberately tiny) caches below:
// the soak is only meaningful if the trees do real device IO to fault.
constexpr uint64_t kKeySpace = 4000;
constexpr size_t kOps = 4000;
constexpr size_t kValueBytes = 100;

sim::FaultConfig soak_faults(uint64_t seed) {
  sim::FaultConfig cfg;
  cfg.seed = seed;
  cfg.read_error_rate = 0.02;
  cfg.write_error_rate = 0.02;
  cfg.torn_write_rate = 0.01;
  cfg.latency_spike_rate = 0.02;
  return cfg;
}

// Tree-shaped adapter so one soak loop drives all four dictionaries.
struct SoakOps {
  std::function<Status(const std::string&, const std::string&)> put;
  std::function<Status(const std::string&)> erase;
  std::function<StatusOr<std::optional<std::string>>(const std::string&)> get;
  /// One checkpoint attempt; the harness retries give-ups with fresh draws.
  std::function<Status()> checkpoint;
};

struct SoakResult {
  uint64_t ok_ops = 0;
  uint64_t failed_ops = 0;
};

SoakResult run_soak(const SoakOps& ops, uint64_t workload_seed) {
  std::map<std::string, std::string> expected;
  std::set<std::string> uncertain;  // failed mutation: old-or-new state
  SoakResult result;
  Rng rng(workload_seed);

  const auto key_at = [&](uint64_t k) { return kv::encode_key(k); };
  for (size_t i = 0; i < kOps; ++i) {
    const std::string key = key_at(rng.uniform(kKeySpace));
    const uint64_t dice = rng.uniform(10);
    if (dice < 6) {
      const std::string value = kv::make_value(rng.next(), kValueBytes);
      const Status s = ops.put(key, value);
      if (s.ok()) {
        expected[key] = value;
        uncertain.erase(key);
        ++result.ok_ops;
      } else {
        uncertain.insert(key);
        ++result.failed_ops;
      }
    } else if (dice < 8) {
      const Status s = ops.erase(key);
      if (s.ok()) {
        expected.erase(key);
        uncertain.erase(key);
        ++result.ok_ops;
      } else {
        uncertain.insert(key);
        ++result.failed_ops;
      }
    } else {
      StatusOr<std::optional<std::string>> got = ops.get(key);
      if (!got.ok()) {
        ++result.failed_ops;
      } else {
        ++result.ok_ops;
        if (uncertain.count(key) == 0) {
          const auto want = expected.find(key);
          if (want == expected.end()) {
            EXPECT_FALSE(got->has_value()) << "phantom key " << key;
          } else if (!got->has_value()) {
            ADD_FAILURE() << "lost key " << key;
          } else {
            EXPECT_EQ(**got, want->second);
          }
        }
      }
    }
  }

  // The checkpoint must eventually land (each attempt consumes fresh
  // fault draws, so a give-up does not repeat forever).
  Status checkpoint = ops.checkpoint();
  for (int tries = 0; !checkpoint.ok() && tries < 200; ++tries) {
    checkpoint = ops.checkpoint();
  }
  EXPECT_TRUE(checkpoint.ok()) << checkpoint.message();

  // Full verification sweep: every op that reported success is durable.
  // Reads can still fault; retry each key until the tree answers.
  for (const auto& [key, value] : expected) {
    if (uncertain.count(key) != 0) continue;
    StatusOr<std::optional<std::string>> got = ops.get(key);
    for (int tries = 0; !got.ok() && tries < 200; ++tries) {
      got = ops.get(key);
    }
    if (!got.ok()) {
      ADD_FAILURE() << "verify read kept failing for " << key;
    } else if (!got->has_value()) {
      ADD_FAILURE() << "lost key " << key;
    } else {
      EXPECT_EQ(**got, value);
    }
  }
  return result;
}

// Every injected fault must be accounted for: retried (and then the
// request either succeeded or eventually gave up) — never swallowed.
void expect_faults_accounted(const sim::FaultInjectingDevice& dev,
                             const blockdev::RetryCounters& counters) {
  EXPECT_GT(dev.fault_stats().injected_errors(), 0u)
      << "soak injected nothing - rates or op count too low to test anything";
  EXPECT_EQ(dev.fault_stats().injected_errors(),
            counters.retries + counters.give_ups);
}

class FaultSoakTest : public testing::TestWithParam<uint64_t> {};

TEST_P(FaultSoakTest, BTreeSurvives) {
  sim::SsdDevice inner(sim::testbed_ssd_profile());
  sim::FaultInjectingDevice dev(inner, soak_faults(GetParam()));
  sim::IoContext io(dev);
  btree::BTreeConfig cfg;
  cfg.node_bytes = 16 * kKiB;
  cfg.cache_bytes = 64 * kKiB;
  btree::BTree tree(dev, io, cfg);

  SoakOps ops;
  ops.put = [&](const std::string& k, const std::string& v) {
    return tree.try_put(k, v);
  };
  ops.erase = [&](const std::string& k) { return tree.try_erase(k).status(); };
  ops.get = [&](const std::string& k) { return tree.try_get(k); };
  ops.checkpoint = [&] { return tree.try_flush(); };
  const SoakResult r = run_soak(ops, GetParam() * 17 + 1);
  EXPECT_GT(r.ok_ops, 0u);
  expect_faults_accounted(dev, tree.retry_counters());

  stats::MetricsRegistry reg;
  dev.export_metrics(reg, "device.");
  tree.export_metrics(reg, "btree.");
  EXPECT_GT(reg.counter("device.faults.injected_read_errors") +
                reg.counter("device.faults.injected_write_errors") +
                reg.counter("device.faults.injected_torn_writes"),
            0u);
  EXPECT_EQ(reg.counter("btree.store.io_retries"),
            tree.retry_counters().retries);
  EXPECT_EQ(reg.counter("btree.store.io_give_ups"),
            tree.retry_counters().give_ups);
}

TEST_P(FaultSoakTest, BeTreeSurvives) {
  sim::SsdDevice inner(sim::testbed_ssd_profile());
  sim::FaultInjectingDevice dev(inner, soak_faults(GetParam()));
  sim::IoContext io(dev);
  betree::BeTreeConfig cfg;
  cfg.node_bytes = 32 * kKiB;
  cfg.cache_bytes = 128 * kKiB;
  betree::BeTree tree(dev, io, cfg);

  SoakOps ops;
  ops.put = [&](const std::string& k, const std::string& v) {
    return tree.try_put(k, v);
  };
  ops.erase = [&](const std::string& k) { return tree.try_erase(k); };
  ops.get = [&](const std::string& k) { return tree.try_get(k); };
  ops.checkpoint = [&] { return tree.try_flush_cache(); };
  const SoakResult r = run_soak(ops, GetParam() * 17 + 2);
  EXPECT_GT(r.ok_ops, 0u);
  expect_faults_accounted(dev, tree.retry_counters());
}

TEST_P(FaultSoakTest, OptBeTreeSurvives) {
  sim::SsdDevice inner(sim::testbed_ssd_profile());
  sim::FaultInjectingDevice dev(inner, soak_faults(GetParam()));
  sim::IoContext io(dev);
  betree::BeTreeConfig cfg;
  cfg.node_bytes = 32 * kKiB;
  cfg.cache_bytes = 128 * kKiB;
  betree_opt::OptBeTree tree(dev, io, cfg);

  SoakOps ops;
  ops.put = [&](const std::string& k, const std::string& v) {
    return tree.try_put(k, v);
  };
  ops.erase = [&](const std::string& k) { return tree.try_erase(k); };
  ops.get = [&](const std::string& k) { return tree.try_get(k); };
  ops.checkpoint = [&] { return tree.try_flush_cache(); };
  const SoakResult r = run_soak(ops, GetParam() * 17 + 3);
  EXPECT_GT(r.ok_ops, 0u);
  expect_faults_accounted(dev, tree.retry_counters());
}

TEST_P(FaultSoakTest, LsmTreeSurvives) {
  sim::SsdDevice inner(sim::testbed_ssd_profile());
  sim::FaultInjectingDevice dev(inner, soak_faults(GetParam()));
  sim::IoContext io(dev);
  lsm::LsmConfig cfg;
  cfg.memtable_bytes = 16 * kKiB;
  cfg.sstable_target_bytes = 16 * kKiB;
  cfg.block_bytes = 4 * kKiB;
  cfg.level0_limit = 3;
  cfg.level1_bytes = 128 * kKiB;
  lsm::LsmTree tree(dev, io, cfg);

  SoakOps ops;
  ops.put = [&](const std::string& k, const std::string& v) {
    return tree.try_put(k, v);
  };
  ops.erase = [&](const std::string& k) { return tree.try_erase(k); };
  ops.get = [&](const std::string& k) { return tree.try_get(k); };
  ops.checkpoint = [&] { return tree.try_flush(); };
  const SoakResult r = run_soak(ops, GetParam() * 17 + 4);
  EXPECT_GT(r.ok_ops, 0u);
  expect_faults_accounted(dev, tree.retry_counters());
  tree.check_invariants();

  stats::MetricsRegistry reg;
  tree.export_metrics(reg, "lsm.");
  EXPECT_EQ(reg.counter("lsm.io_retries"), tree.retry_counters().retries);
  EXPECT_EQ(reg.counter("lsm.io_give_ups"), tree.retry_counters().give_ups);
}

// Determinism across runs: the same seed produces the same outcome
// (ok/failed split and retry counts), per the replayability contract.
TEST(FaultSoakDeterminismTest, SameSeedSameOutcome) {
  const auto run_once = [](uint64_t seed) {
    sim::SsdDevice inner(sim::testbed_ssd_profile());
    sim::FaultInjectingDevice dev(inner, soak_faults(seed));
    sim::IoContext io(dev);
    btree::BTreeConfig cfg;
    cfg.node_bytes = 16 * kKiB;
    cfg.cache_bytes = 64 * kKiB;
    btree::BTree tree(dev, io, cfg);
    SoakOps ops;
    ops.put = [&](const std::string& k, const std::string& v) {
      return tree.try_put(k, v);
    };
    ops.erase = [&](const std::string& k) {
      return tree.try_erase(k).status();
    };
    ops.get = [&](const std::string& k) { return tree.try_get(k); };
    ops.checkpoint = [&] { return tree.try_flush(); };
    const SoakResult r = run_soak(ops, 77);
    return std::make_tuple(r.ok_ops, r.failed_ops,
                           tree.retry_counters().retries,
                           tree.retry_counters().give_ups, io.now());
  };
  EXPECT_EQ(run_once(42), run_once(42));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoakTest,
                         testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace damkit
