// Fault soak: every dictionary runs a mixed workload on a seeded
// fault-injecting SSD, entirely through the fallible try_* APIs. The
// contract under test is the ISSUE's acceptance bar: an injected fault is
// either retried away inside the tree or surfaced as a non-OK Status —
// never an abort — and no operation that reported success loses data.
//
// The soak loop itself is harness::run_fault_soak — one generic driver
// over kv::Dictionary instead of the per-tree copies this file used to
// carry. Mutations that *failed* leave their key in a deliberately
// unspecified (old-or-new, but internally consistent) state; the runner
// marks such keys "uncertain" and stops asserting their exact value.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "harness/workload_runner.h"
#include "kv/engine.h"
#include "sim/fault_injection.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"

namespace damkit {
namespace {

sim::FaultConfig soak_faults(uint64_t seed) {
  sim::FaultConfig cfg;
  cfg.seed = seed;
  cfg.read_error_rate = 0.02;
  cfg.write_error_rate = 0.02;
  cfg.torn_write_rate = 0.01;
  cfg.latency_spike_rate = 0.02;
  return cfg;
}

// Sized so the working set dwarfs the (deliberately tiny) caches below:
// the soak is only meaningful if the trees do real device IO to fault.
kv::EngineConfig soak_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 64 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 128 * kKiB;
  cfg.lsm.memtable_bytes = 16 * kKiB;
  cfg.lsm.sstable_target_bytes = 16 * kKiB;
  cfg.lsm.block_bytes = 4 * kKiB;
  cfg.lsm.level0_limit = 3;
  cfg.lsm.level1_bytes = 128 * kKiB;
  cfg.pdam.buffer_bytes = 16 * kKiB;  // frequent merges → real IO to fault
  return cfg;
}

struct SoakOutcome {
  harness::SoakReport report;
  blockdev::RetryCounters counters;
  uint64_t injected = 0;
  stats::MetricsRegistry metrics;  // device.* + <engine-name>.*
  sim::SimTime elapsed = 0;
};

SoakOutcome run_engine_soak(kv::EngineKind kind, uint64_t fault_seed,
                            uint64_t workload_seed,
                            blockdev::CodecKind codec =
                                blockdev::CodecKind::kDefault) {
  sim::SsdDevice inner(sim::testbed_ssd_profile());
  sim::FaultInjectingDevice dev(inner, soak_faults(fault_seed));
  sim::IoContext io(dev);
  kv::EngineConfig cfg = soak_config();
  cfg.codec = codec;
  const auto tree = kv::make_engine(kind, dev, io, cfg);

  harness::SoakSpec spec;
  spec.seed = workload_seed;
  SoakOutcome out;
  out.report = harness::run_fault_soak(*tree, spec);
  tree->check_invariants();
  out.counters = tree->retry_counters();
  out.injected = dev.fault_stats().injected_errors();
  dev.export_metrics(out.metrics, "device.");
  tree->export_metrics(out.metrics,
                       std::string(kv::engine_kind_name(kind)) + ".");
  out.elapsed = io.now();
  return out;
}

void expect_soak_clean(const SoakOutcome& out) {
  for (const std::string& violation : out.report.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(out.report.checkpoint_ok);
  EXPECT_GT(out.report.ok_ops, 0u);
}

// Every injected fault must be accounted for: retried (and then the
// request either succeeded or eventually gave up) — never swallowed.
void expect_faults_accounted(const SoakOutcome& out) {
  EXPECT_GT(out.injected, 0u)
      << "soak injected nothing - rates or op count too low to test anything";
  EXPECT_EQ(out.injected, out.counters.retries + out.counters.give_ups);
}

class FaultSoakTest : public testing::TestWithParam<uint64_t> {};

TEST_P(FaultSoakTest, BTreeSurvives) {
  const SoakOutcome out = run_engine_soak(kv::EngineKind::kBTree, GetParam(),
                                          GetParam() * 17 + 1);
  expect_soak_clean(out);
  expect_faults_accounted(out);

  EXPECT_GT(out.metrics.counter("device.faults.injected_read_errors") +
                out.metrics.counter("device.faults.injected_write_errors") +
                out.metrics.counter("device.faults.injected_torn_writes"),
            0u);
  EXPECT_EQ(out.metrics.counter("btree.store.io_retries"),
            out.counters.retries);
  EXPECT_EQ(out.metrics.counter("btree.store.io_give_ups"),
            out.counters.give_ups);
}

TEST_P(FaultSoakTest, BeTreeSurvives) {
  const SoakOutcome out = run_engine_soak(kv::EngineKind::kBeTree, GetParam(),
                                          GetParam() * 17 + 2);
  expect_soak_clean(out);
  expect_faults_accounted(out);
}

TEST_P(FaultSoakTest, OptBeTreeSurvives) {
  const SoakOutcome out = run_engine_soak(kv::EngineKind::kOptBeTree,
                                          GetParam(), GetParam() * 17 + 3);
  expect_soak_clean(out);
  expect_faults_accounted(out);
}

TEST_P(FaultSoakTest, LsmTreeSurvives) {
  const SoakOutcome out = run_engine_soak(kv::EngineKind::kLsm, GetParam(),
                                          GetParam() * 17 + 4);
  expect_soak_clean(out);
  expect_faults_accounted(out);

  EXPECT_EQ(out.metrics.counter("lsm.io_retries"), out.counters.retries);
  EXPECT_EQ(out.metrics.counter("lsm.io_give_ups"), out.counters.give_ups);
}

TEST_P(FaultSoakTest, PdamSurvives) {
  const SoakOutcome out = run_engine_soak(kv::EngineKind::kPdam, GetParam(),
                                          GetParam() * 17 + 5);
  expect_soak_clean(out);
  expect_faults_accounted(out);

  EXPECT_EQ(out.metrics.counter("pdam.io_retries"), out.counters.retries);
  EXPECT_EQ(out.metrics.counter("pdam.io_give_ups"), out.counters.give_ups);
}

// Compression under fire: the same soak with an explicit non-identity
// codec. Torn compressed frames must repair via the write-retry path and
// stored-length bookkeeping must survive failed writes (a stale length
// would make a later read decode garbage). The accounting invariant is
// identical: decode failures surface as corruption Statuses and never
// masquerade as injected-fault give-ups.
TEST_P(FaultSoakTest, BTreeSurvivesWithCompression) {
  const SoakOutcome out =
      run_engine_soak(kv::EngineKind::kBTree, GetParam(), GetParam() * 17 + 6,
                      blockdev::CodecKind::kLz);
  expect_soak_clean(out);
  expect_faults_accounted(out);
  // Compression actually engaged: the codec gauges are exported and bytes
  // were saved on this workload's sorted-record node images.
  EXPECT_GT(out.metrics.counter("btree.store.codec.encode_calls"), 0u);
  EXPECT_LT(out.metrics.gauge("btree.store.codec.ratio"), 1.0);
}

TEST_P(FaultSoakTest, LsmTreeSurvivesWithCompression) {
  const SoakOutcome out =
      run_engine_soak(kv::EngineKind::kLsm, GetParam(), GetParam() * 17 + 7,
                      blockdev::CodecKind::kPrefix);
  expect_soak_clean(out);
  expect_faults_accounted(out);
  EXPECT_GT(out.metrics.counter("lsm.codec.encode_calls"), 0u);
}

// The serving layer under fire: k concurrent clients drive the fallible
// path against a fault-injecting device. The accounting contract is the
// same as the sequential soak — every injected fault is either retried
// away or surfaced (injected == retries + give_ups) — and the concurrent
// scheduler must not perturb it: same seed, same split, any k.
TEST(FaultSoakServingTest, ConcurrentClientsKeepFaultAccounting) {
  const auto soak_once = [](uint64_t clients) {
    sim::SsdDevice inner(sim::testbed_ssd_profile());
    sim::FaultInjectingDevice dev(inner, soak_faults(404));
    sim::IoContext io(dev);
    const auto tree =
        kv::make_engine(kv::EngineKind::kBTree, dev, io, soak_config());

    kv::WorkloadSpec spec;
    spec.key_space = 3000;
    spec.value_bytes = 72;
    spec.get_weight = 0.35;
    spec.put_weight = 0.4;
    spec.delete_weight = 0.1;
    spec.upsert_weight = 0.15;
    spec.seed = 555;

    harness::WorkloadRunner runner(*tree, io);
    runner.bulk_load(1000, spec);
    harness::ConcurrentRunOptions copts;
    copts.clients = clients;
    copts.inflight = 2;
    copts.fallible = true;
    // Replay on a clean device: the faults already shaped the recorded
    // chains (retries appear as extra IOs in the trace).
    const sim::SsdConfig profile = sim::testbed_ssd_profile();
    copts.replay_device_factory = [profile] {
      return std::make_unique<sim::SsdDevice>(profile);
    };
    const harness::ConcurrentRunResult run =
        runner.run_concurrent(spec, 4000, copts);
    tree->check_invariants();

    const blockdev::RetryCounters counters = tree->retry_counters();
    EXPECT_EQ(dev.fault_stats().injected_errors(),
              counters.retries + counters.give_ups)
        << "clients=" << clients;
    EXPECT_GT(counters.retries, 0u) << "clients=" << clients;
    EXPECT_EQ(run.latency.count(), 4000u) << "clients=" << clients;
    return std::make_tuple(run.base.digest, run.base.failed_ops,
                           counters.retries, counters.give_ups);
  };
  const auto reference = soak_once(1);
  EXPECT_EQ(soak_once(4), reference);
  EXPECT_EQ(soak_once(16), reference);
}

// Determinism across runs: the same seed produces the same outcome
// (ok/failed split and retry counts), per the replayability contract.
TEST(FaultSoakDeterminismTest, SameSeedSameOutcome) {
  const auto run_once = [](uint64_t seed) {
    const SoakOutcome out = run_engine_soak(kv::EngineKind::kBTree, seed, 77);
    return std::make_tuple(out.report.ok_ops, out.report.failed_ops,
                           out.counters.retries, out.counters.give_ups,
                           out.elapsed);
  };
  EXPECT_EQ(run_once(42), run_once(42));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultSoakTest,
                         testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace damkit
