// Cross-engine differential: one seeded workload driven through the
// generic WorkloadRunner against every engine the factory builds — plus a
// 4-shard ShardedEngine — must observe identical data (digest over every
// get and scan result). Engines may differ in simulated cost only.
//
// Also checks the sharded metrics accounting: with faults injected, every
// injected error shows up in exactly one shard's counters, and the
// router's aggregate equals the per-shard sum (io_retries conservation).
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "blockdev/codec.h"
#include "harness/workload_runner.h"
#include "kv/sharded_engine.h"
#include "kv/slice.h"
#include "sim/fault_injection.h"
#include "sim/mq_ssd.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "stats/metrics.h"
#include "util/bytes.h"
#include "util/table.h"

namespace damkit {
namespace {

kv::EngineConfig small_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 256 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 256 * kKiB;
  cfg.lsm.memtable_bytes = 32 * kKiB;
  cfg.lsm.sstable_target_bytes = 64 * kKiB;
  cfg.pdam.buffer_bytes = 32 * kKiB;
  return cfg;
}

kv::WorkloadSpec differential_spec() {
  kv::WorkloadSpec spec;
  spec.key_space = 3000;
  spec.value_bytes = 56;
  spec.get_weight = 0.35;
  spec.put_weight = 0.35;
  spec.delete_weight = 0.1;
  spec.scan_weight = 0.05;
  spec.upsert_weight = 0.15;
  spec.scan_length = 40;
  spec.seed = 2026;
  return spec;
}

harness::WorkloadRunResult drive(kv::Dictionary& dict, sim::IoContext& io) {
  harness::WorkloadRunner runner(dict, io);
  runner.bulk_load(1500, differential_spec());
  const harness::WorkloadRunResult result =
      runner.run(differential_spec(), 6000);
  dict.check_invariants();
  return result;
}

// The acceptance criterion of the unification: five engines and a sharded
// composition, one op stream, one digest — and compression must be
// invisible to the data plane, so the whole matrix repeats per codec
// (identity, prefix, lz) against a single cross-codec reference digest.
TEST(CrossEngineDifferentialTest, AllEnginesObserveIdenticalData) {
  struct Row {
    std::string name;
    harness::WorkloadRunResult result;
  };
  std::vector<Row> rows;

  for (const blockdev::CodecKind codec : blockdev::kAllCodecKinds) {
    kv::EngineConfig cfg = small_config();
    cfg.codec = codec;
    const std::string tag = "/" + std::string(blockdev::codec_kind_name(codec));
    for (const kv::EngineKind kind : kv::kAllEngineKinds) {
      sim::SsdDevice dev(sim::testbed_ssd_profile());
      sim::IoContext io(dev);
      const auto dict = kv::make_engine(kind, dev, io, cfg);
      rows.push_back({std::string(dict->name()) + tag, drive(*dict, io)});
    }
    {
      sim::SsdDevice dev(sim::testbed_ssd_profile());
      sim::IoContext io(dev);
      kv::ShardedConfig sharded;
      sharded.shards = 4;
      const auto dict = kv::make_sharded_engine(kv::EngineKind::kBTree, dev,
                                                io, cfg, sharded);
      rows.push_back({std::string(dict->name()) + tag, drive(*dict, io)});
    }
  }

  ASSERT_EQ(rows.size(), 18u);
  const harness::WorkloadRunResult& reference = rows[0].result;
  EXPECT_GT(reference.get_hits, 0u);
  EXPECT_GT(reference.scans, 0u);
  for (const Row& row : rows) {
    EXPECT_EQ(row.result.digest, reference.digest) << row.name;
    EXPECT_EQ(row.result.get_hits, reference.get_hits) << row.name;
    EXPECT_EQ(row.result.failed_ops, 0u) << row.name;
    // The op stream itself is engine-independent by construction.
    EXPECT_EQ(row.result.puts, reference.puts) << row.name;
    EXPECT_EQ(row.result.gets, reference.gets) << row.name;
    EXPECT_EQ(row.result.erases, reference.erases) << row.name;
    EXPECT_EQ(row.result.scans, reference.scans) << row.name;
    EXPECT_EQ(row.result.upserts, reference.upserts) << row.name;
  }
}

// The scenario suite: every named workload preset (YCSB core workloads
// A-F plus the shift/olap extras) drives all five engines and a 4-shard
// composition to one digest per preset. The preset-only generator fields
// (hot-set rotation, OLAP scan bursts) shape the op stream before it
// reaches any engine, so they must be exactly as engine-invisible as the
// base mix.
TEST(CrossEngineDifferentialTest, WorkloadPresetsObserveIdenticalData) {
  const char* names[] = {"ycsb-a", "ycsb-b", "ycsb-c", "ycsb-d",
                         "ycsb-e", "ycsb-f", "shift",  "olap"};
  for (const char* name : names) {
    const std::optional<kv::WorkloadSpec> preset =
        kv::make_workload_preset(name);
    ASSERT_TRUE(preset.has_value()) << name;
    kv::WorkloadSpec spec = *preset;
    spec.key_space = 3000;
    spec.value_bytes = 56;
    spec.seed = 2026;

    const auto drive_spec = [&spec](kv::Dictionary& dict,
                                    sim::IoContext& io) {
      harness::WorkloadRunner runner(dict, io);
      runner.bulk_load(1200, spec);
      const harness::WorkloadRunResult result = runner.run(spec, 2500);
      dict.check_invariants();
      return result;
    };

    std::vector<std::pair<std::string, harness::WorkloadRunResult>> rows;
    for (const kv::EngineKind kind : kv::kAllEngineKinds) {
      sim::SsdDevice dev(sim::testbed_ssd_profile());
      sim::IoContext io(dev);
      const auto dict = kv::make_engine(kind, dev, io, small_config());
      rows.emplace_back(std::string(dict->name()), drive_spec(*dict, io));
    }
    {
      sim::SsdDevice dev(sim::testbed_ssd_profile());
      sim::IoContext io(dev);
      kv::ShardedConfig sharded;
      sharded.shards = 4;
      const auto dict = kv::make_sharded_engine(kv::EngineKind::kBTree, dev,
                                                io, small_config(), sharded);
      rows.emplace_back(std::string(dict->name()), drive_spec(*dict, io));
    }

    const harness::WorkloadRunResult& reference = rows[0].second;
    // Every preset observes data: point hits for the read mixes, scan rows
    // for the scan-heavy ones (ycsb-e's gets are zero by design).
    EXPECT_GT(reference.get_hits + reference.scans, 0u) << name;
    for (const auto& [engine, result] : rows) {
      EXPECT_EQ(result.digest, reference.digest) << name << "/" << engine;
      EXPECT_EQ(result.get_hits, reference.get_hits)
          << name << "/" << engine;
      EXPECT_EQ(result.failed_ops, 0u) << name << "/" << engine;
      EXPECT_EQ(result.scans, reference.scans) << name << "/" << engine;
    }
  }
}

// The MQ-device acceptance criterion: MqSsdDevice layers queue-pair
// admission, completion costs, and GC on top of the same flash core, so
// it must be a pure timing refinement. At a single client every engine
// and the sharded composition produce bit-identical data — digest and
// hit counts — on MqSsdDevice and SsdDevice built from the same profile.
TEST(CrossEngineDifferentialTest, MqDeviceIsDigestIdenticalToPlainSsd) {
  const sim::SsdConfig profile = sim::testbed_mq_profile();
  using Factory = std::function<std::unique_ptr<kv::Dictionary>(
      sim::Device&, sim::IoContext&)>;
  std::vector<std::pair<std::string, Factory>> factories;
  for (const kv::EngineKind kind : kv::kAllEngineKinds) {
    factories.emplace_back(std::string(kv::engine_kind_name(kind)),
                           [kind](sim::Device& dev, sim::IoContext& io) {
                             return kv::make_engine(kind, dev, io,
                                                    small_config());
                           });
  }
  factories.emplace_back("sharded-btree",
                         [](sim::Device& dev, sim::IoContext& io) {
                           kv::ShardedConfig sharded;
                           sharded.shards = 4;
                           return kv::make_sharded_engine(
                               kv::EngineKind::kBTree, dev, io, small_config(),
                               sharded);
                         });

  for (const auto& [name, make] : factories) {
    sim::SsdDevice plain(profile);
    sim::IoContext plain_io(plain);
    const auto plain_dict = make(plain, plain_io);
    const harness::WorkloadRunResult reference = drive(*plain_dict, plain_io);

    sim::MqSsdDevice mq(profile);
    sim::IoContext mq_io(mq);
    const auto mq_dict = make(mq, mq_io);
    const harness::WorkloadRunResult run = drive(*mq_dict, mq_io);

    EXPECT_EQ(run.digest, reference.digest) << name;
    EXPECT_EQ(run.get_hits, reference.get_hits) << name;
    EXPECT_EQ(run.failed_ops, 0u) << name;
  }
}

harness::ConcurrentRunResult drive_concurrent(kv::Dictionary& dict,
                                              sim::IoContext& io,
                                              uint64_t clients) {
  harness::WorkloadRunner runner(dict, io);
  runner.bulk_load(1500, differential_spec());
  harness::ConcurrentRunOptions copts;
  copts.clients = clients;
  copts.inflight = 3;
  const sim::SsdConfig profile = sim::testbed_ssd_profile();
  copts.replay_device_factory = [profile] {
    return std::make_unique<sim::SsdDevice>(profile);
  };
  copts.lanes = static_cast<size_t>(profile.total_dies());
  copts.lane_of = [profile](uint64_t offset) {
    return static_cast<size_t>(profile.die_of(offset));
  };
  const harness::ConcurrentRunResult result =
      runner.run_concurrent(differential_spec(), 6000, copts);
  dict.check_invariants();
  return result;
}

// The differential extended to the serving layer: a k-client concurrent
// run must observe exactly the data the single-client reference observed,
// for every engine and the sharded composition. The scheduler's virtual
// round-robin makes this an equality, not a statistical claim.
TEST(CrossEngineDifferentialTest, ConcurrentServingMatchesSequentialReference) {
  for (const kv::EngineKind kind : kv::kAllEngineKinds) {
    sim::SsdDevice ref_dev(sim::testbed_ssd_profile());
    sim::IoContext ref_io(ref_dev);
    const auto ref_dict =
        kv::make_engine(kind, ref_dev, ref_io, small_config());
    const harness::WorkloadRunResult reference = drive(*ref_dict, ref_io);

    sim::SsdDevice dev(sim::testbed_ssd_profile());
    sim::IoContext io(dev);
    const auto dict = kv::make_engine(kind, dev, io, small_config());
    const harness::ConcurrentRunResult run = drive_concurrent(*dict, io, 4);
    EXPECT_EQ(run.base.digest, reference.digest) << dict->name();
    EXPECT_EQ(run.base.get_hits, reference.get_hits) << dict->name();
    EXPECT_EQ(run.base.sim_elapsed, reference.sim_elapsed) << dict->name();
    EXPECT_EQ(run.latency.count(), 6000u) << dict->name();
  }
  {
    sim::SsdDevice ref_dev(sim::testbed_ssd_profile());
    sim::IoContext ref_io(ref_dev);
    kv::ShardedConfig sharded;
    sharded.shards = 4;
    const auto ref_dict = kv::make_sharded_engine(
        kv::EngineKind::kBTree, ref_dev, ref_io, small_config(), sharded);
    const harness::WorkloadRunResult reference = drive(*ref_dict, ref_io);

    sim::SsdDevice dev(sim::testbed_ssd_profile());
    sim::IoContext io(dev);
    const auto dict = kv::make_sharded_engine(kv::EngineKind::kBTree, dev, io,
                                              small_config(), sharded);
    const harness::ConcurrentRunResult run = drive_concurrent(*dict, io, 4);
    EXPECT_EQ(run.base.digest, reference.digest) << dict->name();
    EXPECT_EQ(run.base.sim_elapsed, reference.sim_elapsed) << dict->name();
  }
}

// Same seed, same client count: the whole concurrent outcome — digest and
// every exported serving metric, timeline included — must be bit-equal
// across runs. This is the replayability bar for concurrent experiments.
TEST(CrossEngineDifferentialTest, ConcurrentServingIsDeterministic) {
  const auto run_once = [] {
    sim::SsdDevice dev(sim::testbed_ssd_profile());
    sim::IoContext io(dev);
    const auto dict =
        kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
    return drive_concurrent(*dict, io, 8);
  };
  const harness::ConcurrentRunResult a = run_once();
  const harness::ConcurrentRunResult b = run_once();
  EXPECT_EQ(a.base.digest, b.base.digest);
  EXPECT_EQ(a.base.sim_elapsed, b.base.sim_elapsed);
  EXPECT_EQ(a.concurrent_elapsed, b.concurrent_elapsed);
  EXPECT_EQ(a.batches, b.batches);
  EXPECT_EQ(a.batch_ios, b.batch_ios);
  EXPECT_EQ(a.lane_ios, b.lane_ios);
  EXPECT_EQ(a.max_lane_depth, b.max_lane_depth);
  EXPECT_EQ(a.latency.count(), b.latency.count());
  EXPECT_EQ(a.latency.percentile(50.0), b.latency.percentile(50.0));
  EXPECT_EQ(a.latency.percentile(99.9), b.latency.percentile(99.9));
}

// Conservation under sharding: all four shards fault against the same
// device, and the router's aggregate retry counters must equal both the
// per-shard metric sum and the device's injected-error count — nothing
// double-counted, nothing dropped in the fan-out.
TEST(CrossEngineDifferentialTest, ShardedRetryCountersConserved) {
  sim::SsdDevice inner(sim::testbed_ssd_profile());
  sim::FaultConfig faults;
  faults.seed = 515;
  faults.read_error_rate = 0.02;
  faults.write_error_rate = 0.02;
  faults.torn_write_rate = 0.01;
  sim::FaultInjectingDevice dev(inner, faults);
  sim::IoContext io(dev);

  kv::ShardedConfig sharded;
  sharded.shards = 4;
  const auto dict = kv::make_sharded_engine(kv::EngineKind::kBTree, dev, io,
                                            small_config(), sharded);

  harness::SoakSpec spec;
  spec.ops = 3000;
  spec.key_space = 3000;
  spec.seed = 31;
  const harness::SoakReport report = harness::run_fault_soak(*dict, spec);
  for (const std::string& violation : report.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(report.checkpoint_ok);

  const blockdev::RetryCounters total = dict->retry_counters();
  EXPECT_EQ(dev.fault_stats().injected_errors(),
            total.retries + total.give_ups);

  stats::MetricsRegistry reg;
  dict->export_metrics(reg, "d.");
  EXPECT_EQ(reg.counter("d.io_retries"), total.retries);
  EXPECT_EQ(reg.counter("d.io_give_ups"), total.give_ups);
  uint64_t shard_retries = 0;
  uint64_t shard_give_ups = 0;
  for (int s = 0; s < 4; ++s) {
    shard_retries += reg.counter(strfmt("d.shard%d.store.io_retries", s));
    shard_give_ups += reg.counter(strfmt("d.shard%d.store.io_give_ups", s));
  }
  EXPECT_EQ(shard_retries, total.retries);
  EXPECT_EQ(shard_give_ups, total.give_ups);
  EXPECT_GT(total.retries, 0u) << "soak injected nothing to retry";
}

}  // namespace
}  // namespace damkit
