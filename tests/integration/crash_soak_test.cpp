// The crash-consistency differential: for every engine (five trees plus a
// 4-shard ShardedEngine) behind wal::DurableEngine, crash the device at a
// seeded checked-IO point mid-workload, recover from device bytes twice
// (bit-equal both times), resume the remaining stream, and require the
// final state digest to equal an uncrashed reference run's — for EVERY
// crash point. The default test sweeps a fast subset (including an MQ
// NVMe device leg); the exhaustive every-k-th-IO × seeds sweep is
// DISABLED_ and runs via --gtest_also_run_disabled_tests in the nightly
// crash-sweep workflow.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "harness/crash.h"
#include "kv/engine.h"
#include "kv/sharded_engine.h"
#include "sim/device.h"
#include "sim/mq_ssd.h"
#include "sim/profiles.h"
#include "util/bytes.h"

namespace damkit {
namespace {

kv::EngineConfig small_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 256 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 256 * kKiB;
  cfg.lsm.memtable_bytes = 32 * kKiB;
  cfg.lsm.sstable_target_bytes = 64 * kKiB;
  cfg.pdam.buffer_bytes = 32 * kKiB;
  return cfg;
}

struct EngineUnderTest {
  std::string name;
  std::function<std::unique_ptr<kv::Dictionary>(sim::Device&,
                                                sim::IoContext&)>
      factory;
};

std::vector<EngineUnderTest> engines_under_test() {
  std::vector<EngineUnderTest> engines;
  for (const kv::EngineKind kind : kv::kAllEngineKinds) {
    engines.push_back({std::string(kv::engine_kind_name(kind)),
                       [kind](sim::Device& dev, sim::IoContext& io) {
                         return kv::make_engine(kind, dev, io, small_config());
                       }});
  }
  engines.push_back({"sharded-btree",
                     [](sim::Device& dev, sim::IoContext& io) {
                       kv::ShardedConfig sharded;
                       sharded.shards = 4;
                       return kv::make_sharded_engine(kv::EngineKind::kBTree,
                                                      dev, io, small_config(),
                                                      sharded);
                     }});
  return engines;
}

harness::CrashCycleSpec base_spec(const EngineUnderTest& engine,
                                  uint64_t seed) {
  harness::CrashCycleSpec spec;
  spec.make_engine = engine.factory;
  spec.workload.key_space = 2000;
  spec.workload.value_bytes = 56;
  spec.workload.get_weight = 0.25;
  spec.workload.put_weight = 0.40;
  spec.workload.delete_weight = 0.10;
  spec.workload.scan_weight = 0.05;
  spec.workload.upsert_weight = 0.20;
  spec.workload.scan_length = 30;
  spec.workload.seed = seed;
  spec.bulk_items = 800;
  spec.ops = 2000;
  // Periodic checkpoints so crash points land inside checkpoints too.
  spec.checkpoint_every_ops = 500;
  spec.fault_seed = seed * 7919 + 1;
  return spec;
}

void check_cycle(const harness::CrashCycleReport& report,
                 const std::string& label) {
  EXPECT_TRUE(report.crashed) << label << ": crash point never fired";
  EXPECT_EQ(report.recovered_digest, report.rerecovered_digest)
      << label << ": double recovery diverged (recovery is not idempotent)";
  EXPECT_LE(report.durable_mutations, report.mutations_total) << label;
  EXPECT_EQ(report.final_digest, report.reference_digest)
      << label << ": recovered+resumed state differs from the uncrashed "
      << "reference (durable prefix broken; durable_mutations="
      << report.durable_mutations << " of " << report.mutations_total << ")";
}

// Crash points spread across the run, derived from a clean probe of the
// post-setup checked-IO count so they track workload/engine IO volume.
std::vector<uint64_t> sweep_points(uint64_t span, size_t count) {
  std::vector<uint64_t> points;
  for (size_t i = 1; i <= count; ++i) {
    const uint64_t at = span * i / (count + 1);
    points.push_back(at == 0 ? 1 : at);
  }
  return points;
}

void run_sweep(uint64_t seed, size_t crash_points) {
  for (const EngineUnderTest& engine : engines_under_test()) {
    harness::CrashCycleSpec spec = base_spec(engine, seed);
    const uint64_t reference = harness::reference_state_digest(spec);

    // Probe: same spec, no crash — measures the IO span and doubles as the
    // WAL-wrapper transparency check against the unwrapped reference.
    const harness::CrashCycleReport probe =
        harness::run_crash_cycle(spec, reference);
    ASSERT_FALSE(probe.crashed) << engine.name;
    EXPECT_EQ(probe.final_digest, reference)
        << engine.name << ": the WAL wrapper changed observable data";
    ASSERT_GT(probe.post_setup_ios, 1u) << engine.name;

    for (const uint64_t at : sweep_points(probe.post_setup_ios, crash_points)) {
      spec.crash_after_ios = at;
      const harness::CrashCycleReport report =
          harness::run_crash_cycle(spec, reference);
      check_cycle(report, engine.name + " seed=" + std::to_string(seed) +
                              " crash_at=" + std::to_string(at));
    }
  }
}

// Fast subset: every engine, one seed, four crash points spread across
// the run. Keeps the default ctest lane quick while still exercising
// crash-in-commit, crash-in-checkpoint, and crash-in-tree-IO windows.
TEST(CrashSoakTest, RecoveredStateMatchesReferenceAcrossEngines) {
  run_sweep(/*seed=*/2026, /*crash_points=*/4);
}

// MQ-device rider in the fast lane: the same differential with the
// multi-queue NVMe model underneath, bounded to two engines (the first
// tree and the sharded composition) x two crash points. A device model
// changes timing only — recovered payloads must be identical to the
// plain-SSD runs' reference digests.
TEST(CrashSoakTest, MqDeviceRecoversLikeThePlainSsd) {
  const std::vector<EngineUnderTest> engines = engines_under_test();
  for (const EngineUnderTest* engine : {&engines.front(), &engines.back()}) {
    harness::CrashCycleSpec spec = base_spec(*engine, /*seed=*/2026);
    spec.make_device = [] {
      return std::make_unique<sim::MqSsdDevice>(sim::testbed_mq_profile());
    };
    const uint64_t reference = harness::reference_state_digest(spec);
    const harness::CrashCycleReport probe =
        harness::run_crash_cycle(spec, reference);
    ASSERT_FALSE(probe.crashed) << engine->name;
    EXPECT_EQ(probe.final_digest, reference)
        << engine->name << ": the WAL wrapper changed observable data on mq";
    ASSERT_GT(probe.post_setup_ios, 1u) << engine->name;
    for (const uint64_t at : sweep_points(probe.post_setup_ios, 2)) {
      spec.crash_after_ios = at;
      const harness::CrashCycleReport report =
          harness::run_crash_cycle(spec, reference);
      check_cycle(report,
                  engine->name + " on mq-ssd crash_at=" + std::to_string(at));
    }
  }
}

// The exhaustive sweep behind the nightly crash-sweep workflow:
//   3 seeds x 8 crash points x (5 engines + sharded) = 144 crash cycles.
// Run with: ctest -R CrashSoak --gtest_also_run_disabled_tests, or invoke
// the test binary with --gtest_also_run_disabled_tests.
TEST(CrashSoakTest, DISABLED_FullCrashPointSweep) {
  for (const uint64_t seed : {2026u, 4051u, 8101u}) {
    run_sweep(seed, /*crash_points=*/8);
  }
}

}  // namespace
}  // namespace damkit
