// Reduced-scale versions of the paper's experiments asserting the
// *qualitative* results: model fit quality, knee positions, node-size
// sensitivity shapes, and write-amplification separation.
#include "harness/experiments.h"

#include <gtest/gtest.h>

#include <cmath>

#include "model/mq.h"
#include "sim/profiles.h"
#include "util/bytes.h"

namespace damkit::harness {
namespace {

TEST(AffineExperimentTest, Table2RowForOneDisk) {
  const auto hdd = sim::paper_hdd_profiles()[3];  // 1 TB WD Black 2011
  AffineExperimentConfig cfg;
  cfg.reads_per_size = 32;
  const auto res = run_affine_experiment(hdd, cfg);
  // The affine model is an excellent fit (paper: R² within 0.1% of 1).
  EXPECT_GT(res.fit.r2, 0.995);
  // Recovered parameters near Table 2 targets: s = 0.012, t = 35 us/4K.
  EXPECT_NEAR(res.fit.s, 0.012, 0.012 * 0.2);
  EXPECT_NEAR(res.fit.t_per_4k, 0.000035, 0.000035 * 0.2);
}

TEST(AffineExperimentTest, SamplesGrowWithIoSize) {
  const auto hdd = sim::testbed_hdd_profile();
  AffineExperimentConfig cfg;
  cfg.reads_per_size = 64;
  const auto res = run_affine_experiment(hdd, cfg);
  // Below ~256 KiB the seek-time sampling noise (a few ms over 64 random
  // reads) exceeds the transfer-time differences, so strict monotonicity
  // only holds once transfer dominates.
  for (size_t i = 1; i < res.samples.size(); ++i) {
    if (res.samples[i].io_bytes >= 512 * kKiB) {
      EXPECT_GT(res.samples[i].seconds, res.samples[i - 1].seconds);
    }
  }
  // Overall growth from 4 KiB to 16 MiB dwarfs the noise.
  EXPECT_GT(res.samples.back().seconds, res.samples.front().seconds * 5);
}

TEST(PdamExperimentTest, Table1RowForOneSsd) {
  const auto ssd = sim::paper_ssd_profiles()[0];  // Samsung 860 pro, 4 dies
  PdamExperimentConfig cfg;
  cfg.bytes_per_thread = 64ULL * kMiB;  // reduced scale
  const auto res = run_pdam_experiment(ssd, cfg);
  EXPECT_GT(res.fit.r2, 0.98);
  EXPECT_GT(res.fit.p, 2.0);
  EXPECT_LT(res.fit.p, 5.5);
  EXPECT_NEAR(res.fit.saturated_mbps, 530.0, 530.0 * 0.25);
}

TEST(PdamExperimentTest, TimeFlatThenLinear) {
  const auto ssd = sim::paper_ssd_profiles()[2];  // S55, 3 dies
  PdamExperimentConfig cfg;
  cfg.bytes_per_thread = 32ULL * kMiB;
  const auto res = run_pdam_experiment(ssd, cfg);
  // Flat-ish region: time(2)/time(1) well below 2 (parallelism absorbs).
  EXPECT_LT(res.samples[1].seconds / res.samples[0].seconds, 1.5);
  // Linear region: doubling threads doubles time.
  const double tail_ratio = res.samples.back().seconds /
                            res.samples[res.samples.size() - 2].seconds;
  EXPECT_NEAR(tail_ratio, 2.0, 0.25);
}

TEST(MqExperimentTest, MqFitTracksWherePdamMispredicts) {
  // The MQ refit at reduced scale: on the multi-queue testbed the
  // per-client time ratio rises from the very first added client (the
  // inflight penalty), so the PDAM's flat left segment is wrong while the
  // MQ model's linear latency law tracks.
  MqExperimentConfig cfg;
  cfg.client_counts = {1, 2, 4, 8, 16, 32};
  cfg.ios_per_client = 256;
  const auto res = run_mq_experiment(sim::testbed_mq_profile(), cfg);
  ASSERT_EQ(res.samples.size(), 6u);
  ASSERT_EQ(res.pdam_samples.size(), 6u);
  EXPECT_GT(res.fit.l0_s, 0.0);
  EXPECT_GT(res.fit.beta_s, 0.0);
  EXPECT_GT(res.fit.saturated_iops, 0.0);
  EXPECT_GT(res.fit.r2, 0.95);

  const model::MqModel mq(res.fit.l0_s, res.fit.beta_s,
                          res.fit.saturated_iops, cfg.io_bytes);
  for (size_t i = 0; i < res.samples.size(); ++i) {
    const double measured_ratio = res.samples[i].seconds / res.samples[0].seconds;
    const double predicted_ratio =
        mq.predicted_ratio(static_cast<double>(res.samples[i].clients));
    EXPECT_NEAR(predicted_ratio, measured_ratio, measured_ratio * 0.2)
        << "clients=" << res.samples[i].clients;
  }
}

TEST(SweepTest, BTreeCostsRiseWithLargeNodes) {
  // Figure 2 shape at reduced scale: past the optimum, query and insert
  // costs grow roughly linearly with node size.
  SweepConfig cfg;
  cfg.kind = kv::EngineKind::kBTree;
  cfg.node_sizes = {16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB, 4 * kMiB};
  cfg.items = 250000;  // data ≫ cache even at the largest node size
  cfg.queries = 150;
  cfg.inserts = 150;
  const auto res = run_nodesize_sweep(sim::testbed_hdd_profile(), cfg);
  ASSERT_EQ(res.points.size(), 5u);
  // At this reduced scale the tree is ~1 uncached level deep, so costs
  // track the per-IO affine cost s + tB: 4 MiB nodes are far worse than
  // 16 KiB nodes for point ops, and the growth is monotone past 256 KiB.
  EXPECT_GT(res.points[4].query_ms, res.points[0].query_ms * 1.8);
  EXPECT_GT(res.points[4].insert_ms, res.points[0].insert_ms * 1.5);
  EXPECT_GT(res.points[4].query_ms, res.points[2].query_ms);
  EXPECT_GT(res.points[3].query_ms, res.points[2].query_ms);
  // Overlay exists for every point and is calibrated at the first.
  ASSERT_EQ(res.affine_query_ms.size(), 5u);
  EXPECT_NEAR(res.affine_query_ms[0], res.points[0].query_ms, 1e-9);
}

TEST(SweepTest, BeTreeInsertsFarCheaperThanBTree) {
  SweepConfig b;
  b.kind = kv::EngineKind::kBTree;
  b.node_sizes = {64 * kKiB};
  b.items = 60000;
  b.queries = 100;
  b.inserts = 150;
  const auto bt = run_nodesize_sweep(sim::testbed_hdd_profile(), b);

  SweepConfig be = b;
  be.kind = kv::EngineKind::kBeTree;
  const auto bet = run_nodesize_sweep(sim::testbed_hdd_profile(), be);

  EXPECT_LT(bet.points[0].insert_ms, bt.points[0].insert_ms * 0.5);
}

TEST(SweepTest, BeTreeLessSensitiveToNodeSizeThanBTree) {
  // The paper's central claim (Table 3 / Figures 2-3): growing nodes 16x
  // hurts the B-tree much more than the Bε-tree on inserts.
  const std::vector<uint64_t> sizes{64 * kKiB, 1 * kMiB};
  SweepConfig b;
  b.kind = kv::EngineKind::kBTree;
  b.node_sizes = sizes;
  b.items = 250000;
  b.queries = 100;
  b.inserts = 400;
  const auto bt = run_nodesize_sweep(sim::testbed_hdd_profile(), b);
  SweepConfig be = b;
  be.kind = kv::EngineKind::kBeTree;
  const auto bet = run_nodesize_sweep(sim::testbed_hdd_profile(), be);

  const double btree_growth = bt.points[1].insert_ms / bt.points[0].insert_ms;
  const double betree_growth =
      bet.points[1].insert_ms / bet.points[0].insert_ms;
  EXPECT_LT(betree_growth, btree_growth);
}

TEST(WriteAmpTest, BTreeAmpGrowsBeTreeStaysLow) {
  WriteAmpConfig cfg;
  cfg.node_sizes = {16 * kKiB, 128 * kKiB};
  cfg.items = 30000;
  cfg.updates = 2000;
  const auto points = run_write_amp_experiment(sim::testbed_hdd_profile(),
                                               cfg);
  ASSERT_EQ(points.size(), 2u);
  // Lemma 3: B-tree write amp scales with B.
  EXPECT_GT(points[1].btree_write_amp, points[0].btree_write_amp * 3.0);
  // Bε-tree write amp far below the B-tree's at large B.
  EXPECT_LT(points[1].betree_write_amp, points[1].btree_write_amp * 0.5);
}

}  // namespace
}  // namespace damkit::harness
