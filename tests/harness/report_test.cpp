#include "harness/report.h"

#include <gtest/gtest.h>

namespace damkit::harness {
namespace {

AffineExperimentResult fake_affine() {
  AffineExperimentResult r;
  for (uint64_t io = 4096; io <= 1 << 20; io *= 2) {
    r.samples.push_back({io, 0.012 + 7e-9 * static_cast<double>(io)});
  }
  r.fit = fit_affine(r.samples);
  return r;
}

PdamExperimentResult fake_pdam() {
  PdamExperimentResult r;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    r.samples.push_back(
        {p, p <= 4 ? 10.0 : 2.5 * p, uint64_t(p) << 30});
  }
  r.fit = fit_pdam(r.samples);
  return r;
}

TEST(ReportTest, AffineTableHasRowPerDevice) {
  const Table t = make_affine_table(
      {{"disk A", fake_affine()}, {"disk B", fake_affine()}});
  EXPECT_EQ(t.rows(), 2u);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("disk A"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
}

TEST(ReportTest, PdamTableShowsFittedP) {
  const Table t = make_pdam_table({{"ssd X", fake_pdam()}});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("ssd X"), std::string::npos);
  EXPECT_NE(s.find("4.0"), std::string::npos);  // breakpoint ≈ 4
}

TEST(ReportTest, PdamFigureOneRowPerThreadCount) {
  const Table t = make_pdam_figure({{"a", fake_pdam()}, {"b", fake_pdam()}});
  EXPECT_EQ(t.rows(), 7u);  // thread counts
}

TEST(ReportTest, SweepFigureAlignsOverlay) {
  SweepResult r;
  r.points.push_back({4096, 1.0, 2.0, 3.0, 0.9, 2});
  r.points.push_back({8192, 1.5, 2.5, 4.0, 0.8, 2});
  r.affine_query_ms = {1.0, 1.4};
  r.affine_insert_ms = {2.0, 2.6};
  const Table t = make_sweep_figure(r);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_NE(t.to_string().find("4 KiB"), std::string::npos);
}

TEST(ReportTest, EmitWritesCsv) {
  Table t({"x"});
  t.add_row({"1"});
  const std::string path = testing::TempDir() + "/damkit_report_test.csv";
  const std::string rendered = emit("caption", t, path);
  EXPECT_NE(rendered.find("caption"), std::string::npos);
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  std::remove(path.c_str());
}

TEST(ReportTest, EmitSkipsCsvWhenPathEmpty) {
  Table t({"x"});
  const std::string rendered = emit("no csv", t, "");
  EXPECT_NE(rendered.find("no csv"), std::string::npos);
}

}  // namespace
}  // namespace damkit::harness
