#include "harness/fitting.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace damkit::harness {
namespace {

TEST(FitAffineTest, RecoversSyntheticDevice) {
  // Synthetic: s = 12 ms, t = 30 us per 4 KiB.
  const double s = 0.012;
  const double t4k = 30e-6;
  std::vector<AffineSample> samples;
  for (uint64_t io = 4096; io <= (16u << 20); io *= 2) {
    samples.push_back({io, s + t4k / 4096.0 * static_cast<double>(io)});
  }
  const AffineFit fit = fit_affine(samples);
  EXPECT_NEAR(fit.s, s, s * 1e-9);
  EXPECT_NEAR(fit.t_per_4k, t4k, t4k * 1e-9);
  EXPECT_NEAR(fit.alpha, t4k / s, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitAffineTest, ToleratesNoise) {
  std::vector<AffineSample> samples;
  double wiggle = 1.0;
  for (uint64_t io = 4096; io <= (16u << 20); io *= 2) {
    wiggle = -wiggle;
    samples.push_back(
        {io, 0.015 * (1.0 + 0.02 * wiggle) +
                 7e-9 * static_cast<double>(io)});
  }
  const AffineFit fit = fit_affine(samples);
  EXPECT_NEAR(fit.s, 0.015, 0.002);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(FitPdamTest, RecoversParallelismFromKnee) {
  // Flat 100 s until p = 4, then linear: time = 100·p/4.
  std::vector<PdamSample> samples;
  const uint64_t per_thread = 1ULL << 30;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    const double t = (p <= 4) ? 100.0 : 100.0 * p / 4.0;
    samples.push_back({p, t, per_thread * static_cast<uint64_t>(p)});
  }
  const PdamFit fit = fit_pdam(samples);
  EXPECT_NEAR(fit.p, 4.0, 1.0);
  // Saturated throughput: per-thread bytes / right-segment slope.
  EXPECT_NEAR(fit.saturated_mbps,
              static_cast<double>(per_thread) / 25.0 / 1e6,
              fit.saturated_mbps * 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(FitPdamTest, SoftKneeStillRecoverable) {
  // Rounded transition like real devices (bank conflicts).
  std::vector<PdamSample> samples;
  for (int p : {1, 2, 4, 8, 16, 32, 64}) {
    const double eff = 6.0 * (1.0 - std::pow(1.0 - 1.0 / 6.0, p));
    const double t = 50.0 * p / eff;
    samples.push_back({p, t, static_cast<uint64_t>(p) << 30});
  }
  const PdamFit fit = fit_pdam(samples);
  // A fully smoothed knee biases the segment intersection upward (the
  // left segment picks up slope); the estimate still lands within a small
  // factor of the true parallelism of 6.
  EXPECT_GT(fit.p, 2.0);
  EXPECT_LT(fit.p, 15.0);
}

TEST(FitMqTest, RecoversTheLinearLatencyLaw) {
  // Synthetic MQ device: lat(q) = 200 us + 15 us·(q−1), flash ceiling
  // 40k IOPS. Effective per-IO time is max(lat(q), q/sat); makespan of a
  // q-client round of 1000 IOs each follows directly.
  const double l0 = 200e-6, beta = 15e-6, sat = 40000.0;
  std::vector<MqSample> samples;
  for (int q : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}) {
    const double lat = l0 + beta * (q - 1);
    const double throughput = std::min(q / lat, sat);
    const uint64_t ios = 1000ULL * static_cast<uint64_t>(q);
    samples.push_back({q, static_cast<double>(ios) / throughput, ios});
  }
  const MqFit fit = fit_mq(samples);
  EXPECT_NEAR(fit.l0_s, l0, l0 * 0.05);
  EXPECT_NEAR(fit.beta_s, beta, beta * 0.05);
  EXPECT_NEAR(fit.saturated_iops, sat, sat * 0.05);
  EXPECT_GT(fit.r2, 0.99);
}

TEST(FitMqTest, CeilingOnlySweepDegradesGracefully) {
  // Every round at the flash ceiling: no latency information survives,
  // so the fit reports a flat law at the observed per-IO time.
  std::vector<MqSample> samples;
  for (int q : {8, 16, 32}) {
    const uint64_t ios = 1000ULL * static_cast<uint64_t>(q);
    samples.push_back({q, static_cast<double>(ios) / 40000.0, ios});
  }
  const MqFit fit = fit_mq(samples);
  EXPECT_GT(fit.l0_s, 0.0);
  EXPECT_EQ(fit.beta_s, 0.0);
  EXPECT_NEAR(fit.saturated_iops, 40000.0, 1.0);
}

TEST(FitDeathTest, RequiresEnoughSamples) {
  EXPECT_DEATH(fit_affine({{4096, 0.01}}), "");
  EXPECT_DEATH(fit_pdam({{1, 1.0, 1}, {2, 1.0, 2}}), "");
  EXPECT_DEATH(fit_mq({{1, 1.0, 100}, {2, 1.0, 200}}), "");
}

}  // namespace
}  // namespace damkit::harness
