// WorkloadRunner: deterministic generic driving, the byte-exact legacy
// put/get loop, checkpoint retries, and the fault-soak driver on a clean
// device (its faulting behavior is covered by the integration soak).
#include "harness/workload_runner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "kv/engine.h"
#include "kv/slice.h"
#include "sim/profiles.h"
#include "sim/ssd.h"
#include "util/bytes.h"
#include "util/table.h"

namespace damkit {
namespace {

kv::EngineConfig small_config() {
  kv::EngineConfig cfg;
  cfg.btree.node_bytes = 16 * kKiB;
  cfg.btree.cache_bytes = 256 * kKiB;
  cfg.betree.node_bytes = 32 * kKiB;
  cfg.betree.cache_bytes = 256 * kKiB;
  cfg.lsm.memtable_bytes = 32 * kKiB;
  cfg.lsm.sstable_target_bytes = 64 * kKiB;
  cfg.pdam.buffer_bytes = 32 * kKiB;
  return cfg;
}

kv::WorkloadSpec mixed_spec() {
  kv::WorkloadSpec spec;
  spec.key_space = 2000;
  spec.value_bytes = 48;
  spec.get_weight = 0.4;
  spec.put_weight = 0.4;
  spec.delete_weight = 0.05;
  spec.scan_weight = 0.05;
  spec.upsert_weight = 0.1;
  spec.scan_length = 25;
  spec.seed = 1234;
  return spec;
}

TEST(WorkloadRunnerTest, RunIsDeterministicForAGivenSpec) {
  const auto run_once = [] {
    sim::SsdDevice dev(sim::testbed_ssd_profile());
    sim::IoContext io(dev);
    const auto dict =
        kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
    harness::WorkloadRunner runner(*dict, io);
    runner.bulk_load(1000, mixed_spec());
    return runner.run(mixed_spec(), 3000);
  };
  const harness::WorkloadRunResult a = run_once();
  const harness::WorkloadRunResult b = run_once();
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.sim_elapsed, b.sim_elapsed);
  EXPECT_EQ(a.puts, b.puts);
  EXPECT_EQ(a.gets, b.gets);
  EXPECT_EQ(a.puts + a.gets + a.erases + a.scans + a.upserts, 3000u);
  EXPECT_GT(a.get_hits, 0u);
  EXPECT_EQ(a.failed_ops, 0u);
}

TEST(WorkloadRunnerTest, FallibleRunMatchesInfallibleOnCleanDevice) {
  const auto run_once = [](bool fallible) {
    sim::SsdDevice dev(sim::testbed_ssd_profile());
    sim::IoContext io(dev);
    const auto dict =
        kv::make_engine(kv::EngineKind::kBeTree, dev, io, small_config());
    harness::WorkloadRunner runner(*dict, io);
    runner.bulk_load(500, mixed_spec());
    harness::WorkloadRunOptions options;
    options.fallible = fallible;
    return runner.run(mixed_spec(), 2000, options);
  };
  // With no faults the try_* twins return the same data as the infallible
  // calls, so the observable digest agrees.
  const harness::WorkloadRunResult direct = run_once(false);
  const harness::WorkloadRunResult checked = run_once(true);
  EXPECT_EQ(direct.digest, checked.digest);
  EXPECT_EQ(checked.failed_ops, 0u);
}

TEST(WorkloadRunnerTest, RunPutGetCountsHitsAndDrawsDeterministically) {
  const auto run_once = [](bool fallible) {
    sim::SsdDevice dev(sim::testbed_ssd_profile());
    sim::IoContext io(dev);
    const auto dict =
        kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
    harness::PutGetSpec spec;
    spec.puts = 800;
    spec.gets = 400;
    spec.key_modulus = 500;  // < puts: most gets hit
    spec.value_bytes = 64;
    spec.seed = 42;
    spec.key_of = [](uint64_t id) { return strfmt("key%012llu", id); };
    spec.scans = 1;
    spec.scan_limit = 50;
    spec.fallible = fallible;
    const harness::PutGetResult result = harness::run_put_get(*dict, spec);
    return std::make_pair(result, io.now());
  };
  // The loop draws the same RNG stream either way, so the fallible and
  // infallible paths agree on hits and on simulated time (that equality
  // is what lets damkit_cli flip --fault-seed without perturbing the
  // fault-free workload).
  const auto [direct, direct_time] = run_once(false);
  const auto [checked, checked_time] = run_once(true);
  EXPECT_GT(direct.get_hits, 0u);
  EXPECT_EQ(direct.get_hits, checked.get_hits);
  EXPECT_EQ(direct.failed_ops, 0u);
  EXPECT_EQ(checked.failed_ops, 0u);
  EXPECT_EQ(direct_time, checked_time);
}

TEST(WorkloadRunnerTest, RunConcurrentMatchesRunAndAddsTheTimeline) {
  const auto build = [] {
    auto dev = std::make_unique<sim::SsdDevice>(sim::testbed_ssd_profile());
    auto io = std::make_unique<sim::IoContext>(*dev);
    auto dict = kv::make_engine(kv::EngineKind::kBTree, *dev, *io,
                                small_config());
    return std::make_tuple(std::move(dev), std::move(io), std::move(dict));
  };
  auto [ref_dev, ref_io, ref_dict] = build();
  harness::WorkloadRunner ref_runner(*ref_dict, *ref_io);
  ref_runner.bulk_load(1000, mixed_spec());
  const harness::WorkloadRunResult reference =
      ref_runner.run(mixed_spec(), 3000);

  auto [dev, io, dict] = build();
  harness::WorkloadRunner runner(*dict, *io);
  runner.bulk_load(1000, mixed_spec());
  harness::ConcurrentRunOptions copts;
  copts.clients = 4;
  copts.inflight = 2;
  const sim::SsdConfig profile = sim::testbed_ssd_profile();
  copts.replay_device_factory = [profile] {
    return std::make_unique<sim::SsdDevice>(profile);
  };
  copts.lanes = static_cast<size_t>(profile.total_dies());
  copts.lane_of = [profile](uint64_t offset) {
    return static_cast<size_t>(profile.die_of(offset));
  };
  const harness::ConcurrentRunResult run =
      runner.run_concurrent(mixed_spec(), 3000, copts);

  // The base block reproduces run() exactly: same data observed, same
  // counters, same serial simulated time.
  EXPECT_EQ(run.base.digest, reference.digest);
  EXPECT_EQ(run.base.get_hits, reference.get_hits);
  EXPECT_EQ(run.base.puts, reference.puts);
  EXPECT_EQ(run.base.sim_elapsed, reference.sim_elapsed);
  // The concurrent timeline rides on top: a full latency distribution and
  // a makespan no worse than the serialized one.
  EXPECT_EQ(run.latency.count(), 3000u);
  EXPECT_GE(run.speedup, 1.0);
  EXPECT_GT(run.throughput_ops_per_sec, 0.0);
  EXPECT_GT(run.batches, 0u);
  uint64_t lane_total = 0;
  for (const uint64_t n : run.lane_ios) lane_total += n;
  EXPECT_EQ(lane_total, run.batch_ios);
}

TEST(WorkloadRunnerTest, CheckpointWithRetriesSucceedsImmediatelyWhenClean) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  const auto dict =
      kv::make_engine(kv::EngineKind::kLsm, dev, io, small_config());
  for (uint64_t i = 0; i < 500; ++i) {
    dict->put(kv::encode_key(i), kv::make_value(i, 40));
  }
  EXPECT_TRUE(harness::checkpoint_with_retries(*dict, 10).ok());
}

TEST(WorkloadRunnerTest, FaultSoakOnCleanDeviceIsViolationFree) {
  sim::SsdDevice dev(sim::testbed_ssd_profile());
  sim::IoContext io(dev);
  const auto dict =
      kv::make_engine(kv::EngineKind::kBTree, dev, io, small_config());
  harness::SoakSpec spec;
  spec.ops = 2000;
  spec.key_space = 1000;
  spec.seed = 7;
  const harness::SoakReport report = harness::run_fault_soak(*dict, spec);
  EXPECT_EQ(report.failed_ops, 0u);
  EXPECT_EQ(report.ok_ops, spec.ops);
  EXPECT_TRUE(report.checkpoint_ok);
  EXPECT_TRUE(report.violations.empty());
}

}  // namespace
}  // namespace damkit
