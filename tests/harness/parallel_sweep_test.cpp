// The parallel sweep runner must be a pure wall-clock optimization: every
// index runs exactly once, and a multi-threaded sweep produces results
// identical to the single-threaded one (each point owns its device + RNG).
#include "harness/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "harness/experiments.h"
#include "sim/profiles.h"
#include "util/bytes.h"

namespace damkit::harness {
namespace {

TEST(ParallelSweepTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 1000;
  std::vector<std::atomic<int>> counts(n);
  parallel_sweep(n, 8, [&](size_t i) {
    counts[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ParallelSweepTest, ZeroAndSingleThreadDegenerate) {
  std::vector<int> hits(4, 0);
  parallel_sweep(0, 4, [&](size_t) { FAIL() << "no work expected"; });
  parallel_sweep(hits.size(), 1, [&](size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ParallelSweepTest, NodesizeSweepIdenticalAcrossThreadCounts) {
  SweepConfig cfg;
  cfg.kind = kv::EngineKind::kBTree;
  cfg.node_sizes = {16 * kKiB, 64 * kKiB, 256 * kKiB, 1 * kMiB};
  cfg.items = 40000;
  cfg.queries = 60;
  cfg.inserts = 60;
  cfg.threads = 1;
  const auto serial = run_nodesize_sweep(sim::testbed_hdd_profile(), cfg);
  cfg.threads = 4;
  const auto parallel = run_nodesize_sweep(sim::testbed_hdd_profile(), cfg);

  ASSERT_EQ(serial.points.size(), parallel.points.size());
  for (size_t i = 0; i < serial.points.size(); ++i) {
    EXPECT_EQ(serial.points[i].node_bytes, parallel.points[i].node_bytes);
    EXPECT_EQ(serial.points[i].query_ms, parallel.points[i].query_ms) << i;
    EXPECT_EQ(serial.points[i].insert_ms, parallel.points[i].insert_ms) << i;
    EXPECT_EQ(serial.points[i].write_amp, parallel.points[i].write_amp) << i;
    EXPECT_EQ(serial.points[i].cache_hit_rate,
              parallel.points[i].cache_hit_rate)
        << i;
    EXPECT_EQ(serial.points[i].height, parallel.points[i].height) << i;
  }
  ASSERT_EQ(serial.affine_query_ms.size(), parallel.affine_query_ms.size());
  for (size_t i = 0; i < serial.affine_query_ms.size(); ++i) {
    EXPECT_EQ(serial.affine_query_ms[i], parallel.affine_query_ms[i]) << i;
    EXPECT_EQ(serial.affine_insert_ms[i], parallel.affine_insert_ms[i]) << i;
  }
}

TEST(ParallelSweepTest, AffineExperimentIdenticalAcrossThreadCounts) {
  const auto hdd = sim::testbed_hdd_profile();
  AffineExperimentConfig cfg;
  cfg.reads_per_size = 16;
  cfg.threads = 1;
  const auto serial = run_affine_experiment(hdd, cfg);
  cfg.threads = 8;
  const auto parallel = run_affine_experiment(hdd, cfg);

  ASSERT_EQ(serial.samples.size(), parallel.samples.size());
  for (size_t i = 0; i < serial.samples.size(); ++i) {
    EXPECT_EQ(serial.samples[i].io_bytes, parallel.samples[i].io_bytes);
    EXPECT_EQ(serial.samples[i].seconds, parallel.samples[i].seconds) << i;
  }
  EXPECT_EQ(serial.fit.s, parallel.fit.s);
  EXPECT_EQ(serial.fit.t_per_4k, parallel.fit.t_per_4k);
  EXPECT_EQ(serial.fit.r2, parallel.fit.r2);
}

}  // namespace
}  // namespace damkit::harness
